#include "parallel/par_subtrees.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <tuple>

#include "sequential/liu.hpp"
#include "sequential/postorder.hpp"

namespace treesched {

namespace {

// PQ entry: ordered by non-increasing W, ties by non-increasing w, then id
// for determinism (paper §5.1).
struct PqEntry {
  double W;
  double w;
  NodeId node;

  friend bool operator<(const PqEntry& a, const PqEntry& b) {
    if (a.W != b.W) return a.W > b.W;
    if (a.w != b.w) return a.w > b.w;
    return a.node < b.node;
  }
};

// One pass of Algorithm 2 up to `steps` splits; returns the PQ content and
// seqSet at that point. Shared by the cost scan and the final rebuild.
struct SplitState {
  std::multiset<PqEntry> pq;
  std::vector<NodeId> seq_nodes;
  double seq_work = 0.0;
};

SplitState split_to_rank(const Tree& tree, const std::vector<double>& W,
                         int steps) {
  SplitState st;
  st.pq.insert({W[tree.root()], tree.work(tree.root()), tree.root()});
  for (int s = 0; s < steps; ++s) {
    const PqEntry head = *st.pq.begin();
    st.pq.erase(st.pq.begin());
    st.seq_nodes.push_back(head.node);
    st.seq_work += tree.work(head.node);
    for (NodeId c : tree.children(head.node)) {
      st.pq.insert({W[c], tree.work(c), c});
    }
  }
  return st;
}

// Sequential traversal of a whole tree under the chosen algorithm.
std::vector<NodeId> sequential_order(const Tree& tree, SequentialAlgo algo) {
  switch (algo) {
    case SequentialAlgo::kOptimalPostorder:
      return postorder(tree, PostorderPolicy::kOptimal).order;
    case SequentialAlgo::kLiuExact:
      return liu_optimal_traversal(tree).order;
    case SequentialAlgo::kNaturalPostorder:
      return postorder(tree, PostorderPolicy::kNatural).order;
  }
  throw std::logic_error("unknown SequentialAlgo");
}

}  // namespace

SplitResult split_subtrees(const Tree& tree, int p) {
  if (p < 1) throw std::invalid_argument("split_subtrees: p < 1");
  if (tree.empty()) return {};
  const std::vector<double> W = tree.subtree_work();

  // Cost scan: replay Algorithm 2, tracking the PQ as an ordered multiset,
  // its total W, and the sum of the p largest W (O(p) refresh per step).
  std::multiset<PqEntry> pq;
  pq.insert({W[tree.root()], tree.work(tree.root()), tree.root()});
  double pq_total = W[tree.root()];
  double seq_work = 0.0;

  auto cost_now = [&]() {
    double top_p = 0.0;
    int k = 0;
    double head_w = 0.0;
    for (auto it = pq.begin(); it != pq.end() && k < p; ++it, ++k) {
      top_p += it->W;
      if (k == 0) head_w = it->W;
    }
    // parallel time = heaviest subtree; sequential = split nodes + surplus
    return head_w + seq_work + (pq_total - top_p);
  };

  int best_rank = 0;
  double best_cost = cost_now();  // Cost(0) = W_root
  int rank = 0;
  while (true) {
    const PqEntry head = *pq.begin();
    if (!(head.W > tree.work(head.node))) break;  // head is a leaf
    pq.erase(pq.begin());
    pq_total -= head.W;
    seq_work += tree.work(head.node);
    for (NodeId c : tree.children(head.node)) {
      pq.insert({W[c], tree.work(c), c});
      pq_total += W[c];
    }
    ++rank;
    const double c = cost_now();
    if (c < best_cost) {
      best_cost = c;
      best_rank = rank;
    }
  }

  // Rebuild the chosen split.
  SplitState st = split_to_rank(tree, W, best_rank);
  SplitResult res;
  res.seq_nodes = std::move(st.seq_nodes);
  res.subtree_roots.reserve(st.pq.size());
  for (const PqEntry& e : st.pq) res.subtree_roots.push_back(e.node);
  res.predicted_makespan = best_cost;
  return res;
}

Schedule par_subtrees(const Tree& tree, int p, ParSubtreesOptions opts) {
  if (p < 1) throw std::invalid_argument("par_subtrees: p < 1");
  const NodeId n = tree.size();
  Schedule s(n);
  if (n == 0) return s;

  const SplitResult split = split_subtrees(tree, p);
  const std::vector<double> W = tree.subtree_work();

  // Which subtrees run in the parallel phase, and on which processor.
  // subtree_roots are already sorted by non-increasing W (PQ order).
  std::vector<NodeId> parallel_roots, surplus_roots;
  std::vector<int> root_proc;
  std::vector<double> proc_ready(static_cast<std::size_t>(p), 0.0);
  if (!opts.optimized_packing) {
    // Algorithm 1: the p heaviest subtrees run in parallel, one per
    // processor; the rest join the sequential tail.
    for (std::size_t k = 0; k < split.subtree_roots.size(); ++k) {
      if (static_cast<int>(k) < p) {
        parallel_roots.push_back(split.subtree_roots[k]);
        root_proc.push_back(static_cast<int>(k));
      } else {
        surplus_roots.push_back(split.subtree_roots[k]);
      }
    }
  } else {
    // ParSubtreesOptim: LPT-pack all subtrees onto the p processors.
    for (NodeId r : split.subtree_roots) {
      int best = 0;
      for (int q = 1; q < p; ++q) {
        if (proc_ready[q] < proc_ready[best]) best = q;
      }
      parallel_roots.push_back(r);
      root_proc.push_back(best);
      proc_ready[best] += W[r];
    }
  }

  // Lay out the parallel phase.
  std::fill(proc_ready.begin(), proc_ready.end(), 0.0);
  for (std::size_t k = 0; k < parallel_roots.size(); ++k) {
    const NodeId r = parallel_roots[k];
    const int q = root_proc[k];
    std::vector<NodeId> old_ids;
    const Tree sub = tree.subtree(r, &old_ids);
    const std::vector<NodeId> order = sequential_order(sub, opts.sequential);
    double t = proc_ready[q];
    for (NodeId local : order) {
      const NodeId global = old_ids[local];
      s.start[global] = t;
      s.proc[global] = q;
      t += tree.work(global);
    }
    proc_ready[q] = t;
  }
  double t_par = 0.0;
  for (double t : proc_ready) t_par = std::max(t_par, t);

  // Sequential tail: surplus subtrees + split nodes, in the order induced by
  // a memory-minimizing traversal of the whole tree restricted to them
  // (filtering a valid traversal keeps children before parents).
  std::vector<char> in_tail(static_cast<std::size_t>(n), 0);
  for (NodeId r : surplus_roots) {
    std::vector<NodeId> stack{r};
    while (!stack.empty()) {
      NodeId v = stack.back();
      stack.pop_back();
      in_tail[v] = 1;
      for (NodeId c : tree.children(v)) stack.push_back(c);
    }
  }
  for (NodeId v : split.seq_nodes) in_tail[v] = 1;

  double t = t_par;
  for (NodeId v : sequential_order(tree, opts.sequential)) {
    if (!in_tail[v]) continue;
    s.start[v] = t;
    s.proc[v] = 0;
    t += tree.work(v);
  }
  return s;
}

Schedule par_subtrees_optim(const Tree& tree, int p, SequentialAlgo seq) {
  ParSubtreesOptions opts;
  opts.sequential = seq;
  opts.optimized_packing = true;
  return par_subtrees(tree, p, opts);
}

}  // namespace treesched

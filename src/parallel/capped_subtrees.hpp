#pragma once
// Static, reservation-based memory-capped scheduling: the ParSubtrees
// philosophy under a memory budget.
//
// Where memory_bounded_schedule (the banker) admits individual tasks with
// a dynamic audit, this scheduler reserves memory at SUBTREE granularity:
// the tree is split with SplitSubtrees (Algorithm 2), each subtree's
// sequential-postorder peak m_r is measured, and a subtree may start on an
// idle processor only if
//     sum of peaks of running subtrees
//   + sum of outputs of completed subtrees
//   + m_r                                  <= cap.
// Because a running subtree is accounted at its full peak, the bound is
// conservative and the cap can never be exceeded during the parallel
// phase; the sequential tail is laid out afterwards and checked exactly.
//
// Compared to the banker this trades schedule quality for O(n log n)
// runtime and a trivially auditable invariant -- the classic static
// reservation vs dynamic admission trade-off (see bench_memory_bounded).

#include <optional>

#include "core/schedule.hpp"
#include "core/tree.hpp"
#include "parallel/par_subtrees.hpp"

namespace treesched {

struct CappedSubtreesResult {
  Schedule schedule;
  MemSize cap = 0;
  /// Highest number of subtrees ever running concurrently.
  int max_parallelism = 0;
};

/// Schedules with peak memory <= cap, or nullopt when the cap is too small
/// for this (conservative) scheme. Any cap >= capped_subtrees_min_cap()
/// is feasible.
std::optional<CappedSubtreesResult> capped_subtrees_schedule(
    const Tree& tree, int p, MemSize cap,
    SequentialAlgo seq = SequentialAlgo::kOptimalPostorder);

/// The smallest cap the scheme accepts: the peak of its fully serialized
/// execution (subtrees one at a time in weight order, then the tail).
MemSize capped_subtrees_min_cap(
    const Tree& tree, int p,
    SequentialAlgo seq = SequentialAlgo::kOptimalPostorder);

}  // namespace treesched

#include "parallel/par_inner_first.hpp"

#include "sequential/postorder.hpp"

namespace treesched {

std::vector<PriorityKey> inner_first_priorities(
    const Tree& tree, const std::vector<NodeId>& order) {
  const NodeId n = tree.size();
  const auto depth = tree.depths();
  const auto pos = order_positions(order);
  std::vector<PriorityKey> key(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) {
    const bool leaf = tree.is_leaf(i);
    key[i].k1 = leaf ? 1.0 : 0.0;
    key[i].k2 = leaf ? static_cast<double>(pos[i])
                     : -static_cast<double>(depth[i]);
    key[i].k3 = static_cast<double>(pos[i]);
  }
  return key;
}

Schedule par_inner_first(const Tree& tree, int p,
                         const std::vector<NodeId>& order) {
  return list_schedule(tree, p, inner_first_priorities(tree, order));
}

Schedule par_inner_first(const Tree& tree, int p) {
  return par_inner_first(tree, p,
                         postorder(tree, PostorderPolicy::kOptimal).order);
}

}  // namespace treesched

#pragma once
// Generic event-driven list scheduler (Algorithm 3 of the paper).
//
// At every task-finish event, newly ready tasks enter a priority queue and
// every idle processor is handed the queue's head. The heuristics
// (ParInnerFirst, ParDeepestFirst, the memory-bounded extension) only differ
// in the priority they assign to ready nodes, expressed here as a
// per-node lexicographic key computed once up front.
//
// Any schedule produced this way is a list schedule, hence a (2 - 1/p)
// approximation of the optimal makespan (Graham 1966) and satisfies
// C_max <= W/p + (1 - 1/p) * CP.

#include <vector>

#include "core/schedule.hpp"
#include "core/tree.hpp"

namespace treesched {

/// Lexicographic priority: lower key = scheduled earlier.
struct PriorityKey {
  double k1 = 0.0;
  double k2 = 0.0;
  double k3 = 0.0;

  friend bool operator<(const PriorityKey& a, const PriorityKey& b) {
    if (a.k1 != b.k1) return a.k1 < b.k1;
    if (a.k2 != b.k2) return a.k2 < b.k2;
    return a.k3 < b.k3;
  }
};

/// Runs Algorithm 3 with the given per-node priorities (size n).
/// `p` >= 1 processors. O(n log n).
Schedule list_schedule(const Tree& tree, int p,
                       const std::vector<PriorityKey>& priority);

}  // namespace treesched

#pragma once
// Generic event-driven list scheduler (Algorithm 3 of the paper).
//
// At every task-finish event, newly ready tasks enter a priority queue and
// every idle processor is handed the queue's head. The heuristics
// (ParInnerFirst, ParDeepestFirst, the memory-bounded extension) only differ
// in the priority they assign to ready nodes, expressed here as a
// per-node lexicographic key computed once up front.
//
// Any schedule produced this way is a list schedule, hence a (2 - 1/p)
// approximation of the optimal makespan (Graham 1966) and satisfies
// C_max <= W/p + (1 - 1/p) * CP.

#include <tuple>
#include <vector>

#include "core/schedule.hpp"
#include "core/tree.hpp"

namespace treesched {

/// Lexicographic priority: lower key = scheduled earlier. The node id is
/// the explicit final tie-break, so ordering is total and list schedules
/// are fully deterministic even when k1-k3 collide.
struct PriorityKey {
  double k1 = 0.0;
  double k2 = 0.0;
  double k3 = 0.0;
  NodeId node = kNoNode;  ///< set by list_schedule; kNoNode compares equal

  friend bool operator<(const PriorityKey& a, const PriorityKey& b) {
    return std::tie(a.k1, a.k2, a.k3, a.node) <
           std::tie(b.k1, b.k2, b.k3, b.node);
  }
};

/// Runs Algorithm 3 with the given per-node priorities (size n).
/// `p` >= 1 processors. O(n log n).
Schedule list_schedule(const Tree& tree, int p,
                       const std::vector<PriorityKey>& priority);

}  // namespace treesched

#pragma once
// ParDeepestFirst (paper §5.3): pure makespan focus. Priority of ready
// nodes:
//   1) deepest first, where depth is the w-weighted length of the path to
//      the root including the node's own w_i (the head of the critical
//      path is scheduled first);
//   2) inner nodes before leaves at equal depth;
//   3) leaves of equal depth in the reference postorder O.
//
// Makespan: (2 - 1/p)-approximation, usually near-optimal.
// Memory: unbounded relative to the sequential optimum (paper Fig. 5).

#include <vector>

#include "core/schedule.hpp"
#include "core/tree.hpp"
#include "parallel/list_scheduler.hpp"

namespace treesched {

std::vector<PriorityKey> deepest_first_priorities(
    const Tree& tree, const std::vector<NodeId>& order);

Schedule par_deepest_first(const Tree& tree, int p);

Schedule par_deepest_first(const Tree& tree, int p,
                           const std::vector<NodeId>& order);

}  // namespace treesched

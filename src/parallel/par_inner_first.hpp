#pragma once
// ParInnerFirst (paper §5.2): approximate a sequential postorder in
// parallel. Priority of ready nodes:
//   1) inner (non-leaf) nodes before leaves, deepest inner nodes first;
//   2) leaves in the order of a reference sequential postorder O
//      (by default the memory-optimal postorder, as the paper recommends).
//
// Makespan: (2 - 1/p)-approximation (list scheduling).
// Memory: unbounded relative to the sequential optimum (paper Fig. 4).

#include <vector>

#include "core/schedule.hpp"
#include "core/tree.hpp"
#include "parallel/list_scheduler.hpp"

namespace treesched {

/// Priority keys implementing the ParInnerFirst ordering given the
/// reference traversal `order` (a sequential postorder of the whole tree).
std::vector<PriorityKey> inner_first_priorities(
    const Tree& tree, const std::vector<NodeId>& order);

/// Full heuristic: reference order = optimal sequential postorder.
Schedule par_inner_first(const Tree& tree, int p);

/// Variant with an explicit reference order (ablation A2).
Schedule par_inner_first(const Tree& tree, int p,
                         const std::vector<NodeId>& order);

}  // namespace treesched

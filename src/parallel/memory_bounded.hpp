#pragma once
// Memory-bounded list scheduling — the extension the paper names as future
// work ("designing scheduling algorithms that take as input a cap on the
// memory usage", §7).
//
// The scheduler is an event-driven list scheduler whose admission test
// guarantees the peak memory never exceeds a user-provided cap:
//  * a reference sequential traversal sigma with peak M_sigma <= cap is
//    fixed up front (the optimal postorder);
//  * a ready task may start only if (a) the instantaneous memory after
//    allocating its n_i + f_i stays within the cap, and (b) a banker's-style
//    audit succeeds: assuming all running tasks complete, finishing the
//    remaining tree sequentially in sigma order stays within the cap.
// Invariant (b) holds initially (cap >= M_sigma) and is preserved by every
// admission, and when nothing is running the next sigma task always passes
// the audit, so the scheduler never deadlocks and always completes.
//
// Cap = infinity degenerates to plain list scheduling by the same priority;
// cap = M_sigma degenerates to the sequential traversal. Sweeping the cap
// between the two traces the memory/makespan trade-off curve
// (bench_memory_bounded).

#include <optional>
#include <vector>

#include "core/schedule.hpp"
#include "core/tree.hpp"
#include "parallel/list_scheduler.hpp"

namespace treesched {

struct MemoryBoundedOptions {
  /// Priority among admissible ready tasks; defaults to ParDeepestFirst
  /// keys (makespan focus) if empty.
  std::vector<PriorityKey> priority;
  /// How many queue candidates to audit per scheduling round (the audit is
  /// O(n); bounding the scan keeps the scheduler O(n^2 / audit_window) in
  /// the worst case while barely affecting quality).
  int audit_window = 16;
};

struct MemoryBoundedResult {
  Schedule schedule;
  MemSize cap = 0;           ///< the cap actually enforced
  MemSize sigma_peak = 0;    ///< peak of the reference traversal
};

/// Schedules `tree` on `p` processors with peak memory <= cap.
/// Returns std::nullopt if cap < peak(sigma) (infeasible for this method;
/// use min_feasible_cap to query the threshold).
std::optional<MemoryBoundedResult> memory_bounded_schedule(
    const Tree& tree, int p, MemSize cap, MemoryBoundedOptions opts = {});

/// Smallest cap the scheduler accepts: the optimal-postorder peak.
MemSize min_feasible_cap(const Tree& tree);

}  // namespace treesched

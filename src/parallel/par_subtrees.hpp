#pragma once
// ParSubtrees and ParSubtreesOptim (paper §5.1, Algorithms 1 and 2).
//
// SplitSubtrees repeatedly splits the heaviest subtree (by total work W_i)
// until it is a leaf, evaluating at every step the resulting makespan
//   C(s) = W_head(PQ) + sum_{i in seqSet} w_i + sum_{beyond the p largest} W_i
// and keeps the best split (Lemma 1: this split is makespan-optimal for
// the ParSubtrees execution scheme). Complexity O(n (log n + p)).
//
// ParSubtrees then processes the p largest subtrees concurrently (each with
// a sequential memory-minimizing traversal) and everything else — the split
// nodes and the surplus subtrees — sequentially afterwards.
// Guarantees: p-approximation for makespan, (p+1)-approximation for peak
// memory.
//
// ParSubtreesOptim instead packs ALL produced subtrees onto the p
// processors LPT-style (longest processing time first), which improves the
// makespan but can increase memory (more subtrees in flight at once).

#include <vector>

#include "core/schedule.hpp"
#include "core/tree.hpp"

namespace treesched {

/// Which sequential traversal the subtree/sequential phases use.
enum class SequentialAlgo {
  kOptimalPostorder,  ///< Liu'86 optimal postorder (the paper's choice)
  kLiuExact,          ///< Liu'87 exact optimal traversal
  kNaturalPostorder,  ///< naive postorder (ablation baseline)
};

/// Outcome of SplitSubtrees (Algorithm 2).
struct SplitResult {
  std::vector<NodeId> subtree_roots;  ///< roots of the produced subtrees
  std::vector<NodeId> seq_nodes;      ///< split nodes processed sequentially
  double predicted_makespan = 0.0;    ///< C(x) of the selected split
};

/// Algorithm 2. `p` >= 1.
SplitResult split_subtrees(const Tree& tree, int p);

struct ParSubtreesOptions {
  SequentialAlgo sequential = SequentialAlgo::kOptimalPostorder;
  /// false: Algorithm 1 (only the p largest subtrees in parallel).
  /// true:  ParSubtreesOptim (all subtrees LPT-packed onto p processors).
  bool optimized_packing = false;
};

/// Full heuristic. The returned schedule is feasible by construction and its
/// simulated makespan equals SplitResult::predicted_makespan for the
/// non-optimized variant.
Schedule par_subtrees(const Tree& tree, int p, ParSubtreesOptions opts = {});

/// Convenience wrapper for the optimized variant.
Schedule par_subtrees_optim(const Tree& tree, int p,
                            SequentialAlgo seq = SequentialAlgo::kOptimalPostorder);

}  // namespace treesched

#include "parallel/par_deepest_first.hpp"

#include "sequential/postorder.hpp"

namespace treesched {

std::vector<PriorityKey> deepest_first_priorities(
    const Tree& tree, const std::vector<NodeId>& order) {
  const NodeId n = tree.size();
  const auto wdepth = tree.weighted_depths();
  const auto pos = order_positions(order);
  std::vector<PriorityKey> key(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) {
    key[i].k1 = -wdepth[i];
    key[i].k2 = tree.is_leaf(i) ? 1.0 : 0.0;
    key[i].k3 = static_cast<double>(pos[i]);
  }
  return key;
}

Schedule par_deepest_first(const Tree& tree, int p,
                           const std::vector<NodeId>& order) {
  return list_schedule(tree, p, deepest_first_priorities(tree, order));
}

Schedule par_deepest_first(const Tree& tree, int p) {
  return par_deepest_first(tree, p,
                           postorder(tree, PostorderPolicy::kOptimal).order);
}

}  // namespace treesched

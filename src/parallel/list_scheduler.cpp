#include "parallel/list_scheduler.hpp"

#include <stdexcept>

#include "util/heap.hpp"

namespace treesched {

namespace {

struct ReadyEntry {
  PriorityKey key;
  NodeId node;
};

// Max-heap under "less": top = highest priority = smallest key. The key's
// embedded node id (stamped by list_schedule) makes the order total.
struct ReadyLess {
  bool operator()(const ReadyEntry& a, const ReadyEntry& b) const {
    return b.key < a.key;
  }
};

struct FinishEvent {
  double time;
  NodeId node;
};

struct FinishLess {  // top = earliest finish
  bool operator()(const FinishEvent& a, const FinishEvent& b) const {
    if (a.time != b.time) return b.time < a.time;
    return b.node < a.node;
  }
};

}  // namespace

Schedule list_schedule(const Tree& tree, int p,
                       const std::vector<PriorityKey>& priority) {
  if (p < 1) throw std::invalid_argument("list_schedule: p < 1");
  const NodeId n = tree.size();
  if (static_cast<NodeId>(priority.size()) != n) {
    throw std::invalid_argument("list_schedule: priority size mismatch");
  }
  Schedule s(n);
  if (n == 0) return s;

  // Stamp the node id into each key: the explicit final tie-break.
  std::vector<PriorityKey> key(priority);
  for (NodeId i = 0; i < n; ++i) key[i].node = i;

  std::vector<NodeId> pending(static_cast<std::size_t>(n));
  BinaryHeap<ReadyEntry, ReadyLess> ready;
  ready.reserve(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) {
    pending[i] = tree.num_children(i);
    if (pending[i] == 0) ready.push({key[i], i});
  }

  BinaryHeap<FinishEvent, FinishLess> events;
  std::vector<int> idle;
  idle.reserve(static_cast<std::size_t>(p));
  for (int q = p - 1; q >= 0; --q) idle.push_back(q);

  double now = 0.0;
  auto assign = [&] {
    while (!idle.empty() && !ready.empty()) {
      const ReadyEntry e = ready.pop();
      const int proc = idle.back();
      idle.pop_back();
      s.start[e.node] = now;
      s.proc[e.node] = proc;
      events.push({now + tree.work(e.node), e.node});
    }
  };

  assign();
  while (!events.empty()) {
    now = events.top().time;
    // Drain every event at the current time before assigning, so memory is
    // released and parents become ready within one scheduling round.
    while (!events.empty() && events.top().time == now) {
      const FinishEvent ev = events.pop();
      idle.push_back(s.proc[ev.node]);
      const NodeId par = tree.parent(ev.node);
      if (par != kNoNode && --pending[par] == 0) {
        ready.push({key[par], par});
      }
    }
    assign();
  }
  return s;
}

}  // namespace treesched

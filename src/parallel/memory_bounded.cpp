#include "parallel/memory_bounded.hpp"

#include <algorithm>
#include <stdexcept>

#include "parallel/par_deepest_first.hpp"
#include "sequential/postorder.hpp"
#include "util/heap.hpp"

namespace treesched {

namespace {

struct ReadyEntry {
  PriorityKey key;
  NodeId node;
};
struct ReadyLess {
  bool operator()(const ReadyEntry& a, const ReadyEntry& b) const {
    return b.key < a.key;
  }
};
struct FinishEvent {
  double time;
  NodeId node;
};
struct FinishLess {
  bool operator()(const FinishEvent& a, const FinishEvent& b) const {
    if (a.time != b.time) return b.time < a.time;
    return b.node < a.node;
  }
};

class BoundedScheduler {
 public:
  BoundedScheduler(const Tree& tree, int p, MemSize cap,
                   MemoryBoundedOptions opts)
      : tree_(tree), p_(p), cap_(cap), opts_(std::move(opts)) {}

  std::optional<MemoryBoundedResult> run() {
    const NodeId n = tree_.size();
    auto po = postorder(tree_, PostorderPolicy::kOptimal);
    if (po.peak > cap_) return std::nullopt;
    sigma_ = std::move(po.order);
    sigma_pos_ = order_positions(sigma_);
    if (opts_.priority.empty()) {
      opts_.priority = deepest_first_priorities(tree_, sigma_);
    } else if (static_cast<NodeId>(opts_.priority.size()) != n) {
      throw std::invalid_argument("memory_bounded: priority size mismatch");
    }
    // Stamp the node id into each key: the explicit final tie-break.
    for (NodeId i = 0; i < n; ++i) opts_.priority[i].node = i;

    MemoryBoundedResult res;
    res.cap = cap_;
    res.sigma_peak = po.peak;
    res.schedule = Schedule(n);
    if (n == 0) return res;

    started_.assign(static_cast<std::size_t>(n), 0);
    done_.assign(static_cast<std::size_t>(n), 0);
    pending_.assign(static_cast<std::size_t>(n), 0);
    Schedule& s = res.schedule;

    BinaryHeap<ReadyEntry, ReadyLess> ready;
    for (NodeId i = 0; i < n; ++i) {
      pending_[i] = tree_.num_children(i);
      if (pending_[i] == 0) ready.push({opts_.priority[i], i});
    }
    BinaryHeap<FinishEvent, FinishLess> events;
    std::vector<int> idle;
    for (int q = p_ - 1; q >= 0; --q) idle.push_back(q);

    double now = 0.0;
    sigma_next_ = 0;

    auto assign = [&] {
      // Scan up to audit_window candidates in priority order. When the
      // machine is fully idle and nothing has been admitted yet, keep
      // scanning past the window: the sigma-next task is always admissible
      // (deadlock-freedom invariant), so the scan terminates.
      std::vector<ReadyEntry> deferred;
      int audits = 0;
      bool admitted_any = false;
      while (!idle.empty() && !ready.empty()) {
        const bool must_continue = running_.empty() && !admitted_any;
        if (audits >= std::max(1, opts_.audit_window) && !must_continue) {
          break;
        }
        ReadyEntry e = ready.pop();
        ++audits;
        if (admissible(e.node)) {
          const int proc = idle.back();
          idle.pop_back();
          start_task(e.node, now, proc, s);
          events.push({now + tree_.work(e.node), e.node});
          admitted_any = true;
          // A start changes memory: already-deferred nodes stay deferred
          // (memory only grew), but the window resets for new candidates.
        } else {
          deferred.push_back(e);
        }
      }
      for (const ReadyEntry& e : deferred) ready.push(e);
    };

    assign();
    while (!events.empty()) {
      now = events.top().time;
      while (!events.empty() && events.top().time == now) {
        const FinishEvent ev = events.pop();
        idle.push_back(s.proc[ev.node]);
        finish_task(ev.node);
        const NodeId par = tree_.parent(ev.node);
        if (par != kNoNode && --pending_[par] == 0) {
          ready.push({opts_.priority[par], par});
        }
      }
      assign();
    }
    for (NodeId i = 0; i < n; ++i) {
      if (!done_[i]) throw std::logic_error("memory_bounded: deadlocked");
    }
    return res;
  }

 private:
  void start_task(NodeId i, double now, int proc, Schedule& s) {
    s.start[i] = now;
    s.proc[i] = proc;
    started_[i] = 1;
    mem_ += tree_.exec_size(i) + tree_.output_size(i);
    while (sigma_next_ < sigma_.size() && started_[sigma_[sigma_next_]]) {
      ++sigma_next_;
    }
    running_.push_back(i);
  }

  void finish_task(NodeId i) {
    done_[i] = 1;
    mem_ -= tree_.exec_size(i);
    for (NodeId c : tree_.children(i)) mem_ -= tree_.output_size(c);
    running_.erase(std::find(running_.begin(), running_.end(), i));
  }

  // Admission test for starting `cand` right now.
  bool admissible(NodeId cand) {
    const MemSize rise = tree_.exec_size(cand) + tree_.output_size(cand);
    if (mem_ + rise > cap_) return false;
    // Banker's audit: complete all running tasks and `cand`, then finish the
    // rest sequentially in sigma order; peak must stay within cap.
    MemSize m = mem_ + rise;
    // Completing running tasks + cand frees their exec files and inputs.
    auto complete = [&](NodeId r) {
      m -= tree_.exec_size(r);
      for (NodeId c : tree_.children(r)) m -= tree_.output_size(c);
    };
    for (NodeId r : running_) complete(r);
    complete(cand);
    for (std::size_t k = sigma_next_; k < sigma_.size(); ++k) {
      const NodeId v = sigma_[k];
      if (started_[v] || v == cand) continue;
      const MemSize need = m + tree_.exec_size(v) + tree_.output_size(v);
      if (need > cap_) return false;
      m = need - tree_.exec_size(v);
      for (NodeId c : tree_.children(v)) m -= tree_.output_size(c);
    }
    return true;
  }

  const Tree& tree_;
  int p_;
  MemSize cap_;
  MemoryBoundedOptions opts_;
  std::vector<NodeId> sigma_;
  std::vector<NodeId> sigma_pos_;
  std::size_t sigma_next_ = 0;
  std::vector<char> started_, done_;
  std::vector<NodeId> pending_;
  std::vector<NodeId> running_;
  MemSize mem_ = 0;
};

}  // namespace

std::optional<MemoryBoundedResult> memory_bounded_schedule(
    const Tree& tree, int p, MemSize cap, MemoryBoundedOptions opts) {
  if (p < 1) throw std::invalid_argument("memory_bounded_schedule: p < 1");
  return BoundedScheduler(tree, p, cap, std::move(opts)).run();
}

MemSize min_feasible_cap(const Tree& tree) {
  return best_postorder_memory(tree);
}

}  // namespace treesched

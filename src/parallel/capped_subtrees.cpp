#include "parallel/capped_subtrees.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/simulator.hpp"
#include "sequential/liu.hpp"
#include "sequential/postorder.hpp"

namespace treesched {

namespace {

struct SubtreeInfo {
  NodeId root;
  double total_work;
  MemSize peak;    // sequential peak of the subtree on its own
  MemSize output;  // f_root of the subtree
  std::vector<NodeId> order;  // traversal in GLOBAL node ids
};

struct Plan {
  SplitResult split;
  std::vector<SubtreeInfo> subs;      // sorted by non-increasing work
  std::vector<NodeId> full_order;     // whole-tree traversal (for the tail)
};

std::vector<NodeId> tree_order(const Tree& tree, SequentialAlgo seq,
                               MemSize* peak) {
  switch (seq) {
    case SequentialAlgo::kOptimalPostorder: {
      auto res = postorder(tree, PostorderPolicy::kOptimal);
      *peak = res.peak;
      return std::move(res.order);
    }
    case SequentialAlgo::kLiuExact: {
      auto res = liu_optimal_traversal(tree);
      *peak = res.peak;
      return std::move(res.order);
    }
    case SequentialAlgo::kNaturalPostorder: {
      auto res = postorder(tree, PostorderPolicy::kNatural);
      *peak = res.peak;
      return std::move(res.order);
    }
  }
  throw std::logic_error("unknown SequentialAlgo");
}

Plan make_plan(const Tree& tree, int p, SequentialAlgo seq) {
  Plan plan;
  plan.split = split_subtrees(tree, p);
  const auto W = tree.subtree_work();
  plan.subs.reserve(plan.split.subtree_roots.size());
  for (NodeId r : plan.split.subtree_roots) {
    SubtreeInfo info;
    info.root = r;
    info.total_work = W[r];
    info.output = tree.output_size(r);
    std::vector<NodeId> old_ids;
    const Tree sub = tree.subtree(r, &old_ids);
    MemSize pk = 0;
    const auto local = tree_order(sub, seq, &pk);
    info.peak = pk;
    info.order.resize(local.size());
    for (std::size_t k = 0; k < local.size(); ++k) {
      info.order[k] = old_ids[local[k]];
    }
    plan.subs.push_back(std::move(info));
  }
  std::sort(plan.subs.begin(), plan.subs.end(),
            [](const SubtreeInfo& a, const SubtreeInfo& b) {
              if (a.total_work != b.total_work) {
                return a.total_work > b.total_work;
              }
              return a.root < b.root;
            });
  MemSize unused = 0;
  plan.full_order = tree_order(tree, seq, &unused);
  return plan;
}

// Lays out the sequential tail (split nodes) starting at time t0 and
// returns the constructed schedule's exact simulated peak.
void layout_tail(const Tree& tree, const Plan& plan, double t0,
                 Schedule& schedule) {
  std::vector<char> in_tail(static_cast<std::size_t>(tree.size()), 0);
  for (NodeId v : plan.split.seq_nodes) in_tail[v] = 1;
  double t = t0;
  for (NodeId v : plan.full_order) {
    if (!in_tail[v]) continue;
    schedule.start[v] = t;
    schedule.proc[v] = 0;
    t += tree.work(v);
  }
}

}  // namespace

std::optional<CappedSubtreesResult> capped_subtrees_schedule(
    const Tree& tree, int p, MemSize cap, SequentialAlgo seq) {
  if (p < 1) throw std::invalid_argument("capped_subtrees_schedule: p < 1");
  const NodeId n = tree.size();
  CappedSubtreesResult res;
  res.cap = cap;
  res.schedule = Schedule(n);
  if (n == 0) return res;

  const Plan plan = make_plan(tree, p, seq);
  const auto& subs = plan.subs;

  struct Running {
    double finish;
    int proc;
    std::size_t idx;
  };
  std::vector<Running> running;
  std::vector<int> idle;
  for (int q = p - 1; q >= 0; --q) idle.push_back(q);
  MemSize committed = 0;  // running peaks + finished outputs
  double now = 0.0;
  std::size_t done = 0;
  std::size_t next = 0;  // subtrees start strictly in weight order

  // Strict in-order admission keeps {done + running} a weight-order
  // prefix, which makes capped_subtrees_min_cap a true feasibility floor:
  // whenever the machine drains, committed is exactly the prefix's output
  // sum, and the floor guarantees the next subtree fits.
  auto try_start = [&]() {
    while (next < subs.size() && !idle.empty() &&
           committed + subs[next].peak <= cap) {
      const std::size_t i = next++;
      const int proc = idle.back();
      idle.pop_back();
      double t = now;
      for (NodeId v : subs[i].order) {
        res.schedule.start[v] = t;
        res.schedule.proc[v] = proc;
        t += tree.work(v);
      }
      committed += subs[i].peak;
      running.push_back({t, proc, i});
      res.max_parallelism =
          std::max(res.max_parallelism, static_cast<int>(running.size()));
    }
  };

  try_start();
  while (done < subs.size()) {
    if (running.empty()) return std::nullopt;  // nothing fits: infeasible
    auto it = std::min_element(running.begin(), running.end(),
                               [](const Running& a, const Running& b) {
                                 if (a.finish != b.finish) {
                                   return a.finish < b.finish;
                                 }
                                 return a.idx < b.idx;
                               });
    const Running fin = *it;
    running.erase(it);
    now = std::max(now, fin.finish);
    idle.push_back(fin.proc);
    committed -= subs[fin.idx].peak;
    committed += subs[fin.idx].output;
    ++done;
    try_start();
  }

  layout_tail(tree, plan, now, res.schedule);

  // Exact audit: the reservation invariant covers the parallel phase, the
  // simulation additionally covers the tail (whose base holds every
  // subtree output).
  if (simulate(tree, res.schedule).peak_memory > cap) return std::nullopt;
  return res;
}

MemSize capped_subtrees_min_cap(const Tree& tree, int p, SequentialAlgo seq) {
  if (tree.empty()) return 0;
  const Plan plan = make_plan(tree, p, seq);
  // Reservation floor of the fully serialized run (subtrees one at a time
  // in weight order): the scheduler charges a running subtree its full
  // peak, on top of the outputs of the subtrees already finished.
  MemSize floor = 0;
  MemSize done_outputs = 0;
  for (const SubtreeInfo& sub : plan.subs) {
    floor = std::max(floor, done_outputs + sub.peak);
    done_outputs += sub.output;
  }
  // Tail floor: exact peak of the serialized layout.
  Schedule serial(tree.size());
  double t = 0.0;
  for (const SubtreeInfo& sub : plan.subs) {
    for (NodeId v : sub.order) {
      serial.start[v] = t;
      serial.proc[v] = 0;
      t += tree.work(v);
    }
  }
  layout_tail(tree, plan, t, serial);
  return std::max(floor, simulate(tree, serial).peak_memory);
}

}  // namespace treesched

#include "core/trace.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace treesched {

ScheduleStats schedule_stats(const Tree& tree, const Schedule& s, int p) {
  ScheduleStats st;
  st.makespan = s.makespan(tree);
  st.peak_memory = simulate(tree, s).peak_memory;
  st.total_work = tree.total_work();
  st.per_proc.resize(static_cast<std::size_t>(p));
  for (int q = 0; q < p; ++q) st.per_proc[q].proc = q;
  for (NodeId i = 0; i < tree.size(); ++i) {
    auto& ps = st.per_proc[s.proc[i]];
    ps.tasks += 1;
    ps.busy += tree.work(i);
  }
  double util_sum = 0.0;
  for (auto& ps : st.per_proc) {
    ps.utilization = st.makespan > 0 ? ps.busy / st.makespan : 0.0;
    if (ps.tasks > 0) {
      ++st.processors_used;
      util_sum += ps.utilization;
    }
  }
  st.avg_utilization =
      st.processors_used > 0 ? util_sum / st.processors_used : 0.0;
  return st;
}

void ascii_gantt(std::ostream& os, const Tree& tree, const Schedule& s,
                 int p, int width) {
  const double makespan = s.makespan(tree);
  if (makespan <= 0.0 || width < 8) {
    os << "(empty schedule)\n";
    return;
  }
  const double scale = width / makespan;
  for (int q = 0; q < p; ++q) {
    std::string row(static_cast<std::size_t>(width), '.');
    for (NodeId i = 0; i < tree.size(); ++i) {
      if (s.proc[i] != q) continue;
      int lo = static_cast<int>(std::floor(s.start[i] * scale));
      int hi = static_cast<int>(std::ceil(s.finish(tree, i) * scale));
      lo = std::clamp(lo, 0, width - 1);
      hi = std::clamp(hi, lo + 1, width);
      const char glyph =
          i <= 9 ? static_cast<char>('0' + i) : (i % 2 ? '#' : '@');
      for (int c = lo; c < hi; ++c) row[c] = glyph;
    }
    os << "P" << q << " |" << row << "|\n";
  }
  os << "    0" << std::string(static_cast<std::size_t>(width) - 1, ' ')
     << makespan << "\n";
}

void write_memory_profile_csv(std::ostream& os, const Tree& tree,
                              const Schedule& s) {
  SimulationOptions opts;
  opts.record_profile = true;
  const auto sim = simulate(tree, s, opts);
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "time,memory\n";
  for (const auto& ev : sim.profile) {
    os << ev.time << ',' << ev.mem << '\n';
  }
}

void write_schedule_csv(std::ostream& os, const Tree& tree,
                        const Schedule& s) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "task,proc,start,finish,work,out,exec\n";
  for (NodeId i = 0; i < tree.size(); ++i) {
    os << i << ',' << s.proc[i] << ',' << s.start[i] << ','
       << s.finish(tree, i) << ',' << tree.work(i) << ','
       << tree.output_size(i) << ',' << tree.exec_size(i) << '\n';
  }
}

Schedule read_schedule_csv(std::istream& is, const Tree& tree) {
  std::string line;
  if (!std::getline(is, line) || line.rfind("task,proc,start", 0) != 0) {
    throw std::runtime_error("read_schedule_csv: missing header");
  }
  Schedule s(tree.size());
  std::vector<char> seen(static_cast<std::size_t>(tree.size()), 0);
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string cell;
    auto next = [&]() {
      if (!std::getline(row, cell, ',')) {
        throw std::runtime_error("read_schedule_csv: short row: " + line);
      }
      return cell;
    };
    const long task = std::stol(next());
    if (task < 0 || task >= tree.size()) {
      throw std::runtime_error("read_schedule_csv: bad task id");
    }
    s.proc[task] = std::stoi(next());
    s.start[task] = std::stod(next());
    seen[task] = 1;
  }
  for (NodeId i = 0; i < tree.size(); ++i) {
    if (!seen[i]) {
      std::ostringstream msg;
      msg << "read_schedule_csv: task " << i << " missing";
      throw std::runtime_error(msg.str());
    }
  }
  return s;
}

}  // namespace treesched

#pragma once
// Event-driven replay of a schedule, producing the exact memory profile.
//
// Memory accounting (paper §3.1):
//  * when task i STARTS, its inputs (the outputs f_c of its children) are
//    already resident; the simulator additionally allocates n_i + f_i;
//  * when task i FINISHES, n_i and all the children outputs f_c are freed;
//    f_i stays resident until the parent finishes (forever for the root).
//
// Peak memory can only change at task starts (allocations) so the peak is
// sampled there; the full step profile is also available for plotting and
// for the memory-bounded scheduler's audits.

#include <cstdint>
#include <vector>

#include "core/schedule.hpp"
#include "core/tree.hpp"

namespace treesched {

/// One memory-profile step: memory level `mem` holds from `time` until the
/// next event's time.
struct MemoryEvent {
  double time;
  MemSize mem;
};

struct SimulationResult {
  double makespan = 0.0;
  MemSize peak_memory = 0;
  /// Resident bytes after everything completed (= f_root).
  MemSize final_memory = 0;
  /// Time-ordered profile; only filled when requested.
  std::vector<MemoryEvent> profile;
};

struct SimulationOptions {
  bool record_profile = false;
};

/// Replays `s` on `tree` and computes makespan and exact peak memory.
/// The schedule must be feasible (see validate_schedule); the simulator
/// checks precedences as it replays and throws std::invalid_argument on
/// violations, so scoring an infeasible schedule is impossible.
SimulationResult simulate(const Tree& tree, const Schedule& s,
                          const SimulationOptions& opts = {});

/// Peak memory of a sequential traversal (children-before-parents order).
/// Equivalent to simulate(tree, sequential_schedule(tree, order)).peak_memory
/// but O(n) with no event machinery; used in algorithm inner loops.
MemSize sequential_peak_memory(const Tree& tree,
                               const std::vector<NodeId>& order);

}  // namespace treesched

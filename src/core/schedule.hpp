#pragma once
// A schedule assigns each task a start time and a processor. Finish time is
// start + w_i. Schedules are produced by the heuristics and scored by the
// simulator (core/simulator.hpp), which is the single source of truth for
// makespan and peak memory.

#include <vector>

#include "core/tree.hpp"

namespace treesched {

struct Schedule {
  std::vector<double> start;  ///< start[i]: start time of task i
  std::vector<int> proc;      ///< proc[i]: processor executing task i

  Schedule() = default;
  explicit Schedule(NodeId n)
      : start(static_cast<std::size_t>(n), 0.0),
        proc(static_cast<std::size_t>(n), 0) {}

  [[nodiscard]] NodeId size() const {
    return static_cast<NodeId>(start.size());
  }
  [[nodiscard]] double finish(const Tree& tree, NodeId i) const {
    return start[i] + tree.work(i);
  }
  [[nodiscard]] double makespan(const Tree& tree) const;

  /// Tasks sorted by (start time, id): the execution order.
  [[nodiscard]] std::vector<NodeId> by_start_time() const;
};

/// Builds the schedule that runs tasks sequentially on processor 0 in the
/// given traversal order (children-before-parents is the caller's duty;
/// validate with `validate_schedule`).
Schedule sequential_schedule(const Tree& tree,
                             const std::vector<NodeId>& order);

/// Result of schedule validation.
struct ValidationResult {
  bool ok = true;
  std::string error;  ///< empty when ok
};

/// Checks that `s` is a feasible p-processor schedule of `tree`:
/// every task scheduled exactly once, no task starts before all of its
/// children finished, and no more than p tasks overlap in time
/// (and no two tasks overlap on the same processor).
ValidationResult validate_schedule(const Tree& tree, const Schedule& s, int p);

}  // namespace treesched

#include "core/outtree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace treesched {

Schedule reverse_schedule(const Tree& tree, const Schedule& s) {
  const double makespan = s.makespan(tree);
  Schedule out(s.size());
  for (NodeId i = 0; i < s.size(); ++i) {
    out.start[i] = makespan - s.finish(tree, i);
    out.proc[i] = s.proc[i];
  }
  return out;
}

SimulationResult simulate_out_tree(const Tree& tree, const Schedule& s,
                                   const SimulationOptions& opts) {
  const NodeId n = tree.size();
  if (s.size() != n) {
    throw std::invalid_argument("simulate_out_tree: size mismatch");
  }
  SimulationResult res;
  if (n == 0) return res;

  std::vector<NodeId> by_start(n), by_finish(n);
  std::iota(by_start.begin(), by_start.end(), 0);
  by_finish = by_start;
  std::sort(by_start.begin(), by_start.end(), [&](NodeId a, NodeId b) {
    if (s.start[a] != s.start[b]) return s.start[a] < s.start[b];
    return a < b;
  });
  std::sort(by_finish.begin(), by_finish.end(), [&](NodeId a, NodeId b) {
    const double fa = s.finish(tree, a), fb = s.finish(tree, b);
    if (fa != fb) return fa < fb;
    return a < b;
  });

  std::vector<char> done(static_cast<std::size_t>(n), 0);
  // The root's input file is the initial data, resident from time 0.
  MemSize mem = tree.output_size(tree.root());
  MemSize peak = mem;
  std::size_t fi = 0;

  auto record = [&](double t) {
    if (opts.record_profile) {
      if (!res.profile.empty() && res.profile.back().time == t) {
        res.profile.back().mem = mem;
      } else {
        res.profile.push_back({t, mem});
      }
    }
  };
  record(0.0);

  const double eps = 1e-9;
  for (NodeId idx : by_start) {
    const double t = s.start[idx];
    const double tol = eps * std::max(1.0, std::abs(t));
    while (fi < by_finish.size() &&
           s.finish(tree, by_finish[fi]) <= t + tol) {
      const NodeId f = by_finish[fi++];
      mem -= tree.exec_size(f);
      mem -= tree.output_size(f);  // consumed its own input edge file
      done[f] = 1;
      record(s.finish(tree, f));
    }
    const NodeId par = tree.parent(idx);
    if (par != kNoNode && !done[par]) {
      std::ostringstream os;
      os << "simulate_out_tree: task " << idx << " starts before parent "
         << par << " finishes";
      throw std::invalid_argument(os.str());
    }
    mem += tree.exec_size(idx);
    for (NodeId c : tree.children(idx)) mem += tree.output_size(c);
    peak = std::max(peak, mem);
    record(t);
  }
  while (fi < by_finish.size()) {
    const NodeId f = by_finish[fi++];
    mem -= tree.exec_size(f);
    mem -= tree.output_size(f);
    record(s.finish(tree, f));
  }
  res.makespan = s.makespan(tree);
  res.peak_memory = peak;
  res.final_memory = mem;
  return res;
}

ValidationResult validate_out_tree_schedule(const Tree& tree,
                                            const Schedule& s, int p) {
  // Processor/overlap/start checks are direction-independent: reuse the
  // in-tree validator on a tree whose precedences we check separately.
  ValidationResult res;
  const NodeId n = tree.size();
  if (s.size() != n) {
    res.ok = false;
    res.error = "schedule size != tree size";
    return res;
  }
  for (NodeId i = 0; i < n; ++i) {
    const NodeId par = tree.parent(i);
    if (par == kNoNode) continue;
    const double tol =
        1e-9 * std::max(1.0, std::max(std::abs(s.start[i]),
                                      std::abs(s.finish(tree, par))));
    if (s.start[i] < s.finish(tree, par) - tol) {
      std::ostringstream os;
      os << "task " << i << " starts before its out-tree predecessor "
         << par << " finishes";
      res.ok = false;
      res.error = os.str();
      return res;
    }
  }
  // Overlap and range checks: run the in-tree validator with precedence
  // errors impossible (we pass a forest-free check by construction)...
  // simplest: replicate the overlap logic via validate_schedule on a
  // reversed schedule, which restores in-tree precedences.
  return validate_schedule(tree, reverse_schedule(tree, s), p);
}

}  // namespace treesched

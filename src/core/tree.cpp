#include "core/tree.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace treesched {

NodeId TreeBuilder::add_node(NodeId parent, MemSize output_size,
                             MemSize exec_size, double work) {
  parent_.push_back(parent);
  output_.push_back(output_size);
  exec_.push_back(exec_size);
  work_.push_back(work);
  return static_cast<NodeId>(parent_.size() - 1);
}

void TreeBuilder::set_parent(NodeId node, NodeId parent) {
  parent_.at(static_cast<std::size_t>(node)) = parent;
}

Tree TreeBuilder::build() && {
  return Tree(std::move(parent_), std::move(output_), std::move(exec_),
              std::move(work_));
}

Tree::Tree(std::vector<NodeId> parent, std::vector<MemSize> output_size,
           std::vector<MemSize> exec_size, std::vector<double> work)
    : parent_(std::move(parent)),
      output_(std::move(output_size)),
      exec_(std::move(exec_size)),
      work_(std::move(work)) {
  const auto n = static_cast<NodeId>(parent_.size());
  if (output_.size() != parent_.size() || exec_.size() != parent_.size() ||
      work_.size() != parent_.size()) {
    throw std::invalid_argument("Tree: mismatched array lengths");
  }
  if (n == 0) return;
  root_ = kNoNode;
  for (NodeId i = 0; i < n; ++i) {
    if (parent_[i] == kNoNode) {
      if (root_ != kNoNode) throw std::invalid_argument("Tree: two roots");
      root_ = i;
    } else if (parent_[i] < 0 || parent_[i] >= n || parent_[i] == i) {
      throw std::invalid_argument("Tree: bad parent id");
    }
    if (work_[i] < 0.0) throw std::invalid_argument("Tree: negative work");
  }
  if (root_ == kNoNode) throw std::invalid_argument("Tree: no root");
  build_children();
  // Connectivity/acyclicity: a postorder from the root must visit all nodes.
  if (static_cast<NodeId>(natural_postorder().size()) != n) {
    throw std::invalid_argument("Tree: disconnected or cyclic parent array");
  }
}

void Tree::build_children() {
  const NodeId n = size();
  child_begin_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId i = 0; i < n; ++i) {
    if (parent_[i] != kNoNode) ++child_begin_[parent_[i] + 1];
  }
  for (NodeId i = 0; i < n; ++i) child_begin_[i + 1] += child_begin_[i];
  child_list_.assign(n > 0 ? static_cast<std::size_t>(n - 1) : 0, 0);
  std::vector<std::int64_t> cursor(child_begin_.begin(),
                                   child_begin_.end() - 1);
  for (NodeId i = 0; i < n; ++i) {
    if (parent_[i] != kNoNode) child_list_[cursor[parent_[i]]++] = i;
  }
}

MemSize Tree::processing_memory(NodeId i) const {
  MemSize m = exec_[i] + output_[i];
  for (NodeId c : children(i)) m += output_[c];
  return m;
}

NodeId Tree::num_leaves() const {
  NodeId k = 0;
  for (NodeId i = 0; i < size(); ++i) k += is_leaf(i) ? 1 : 0;
  return k;
}

std::vector<NodeId> Tree::natural_postorder() const {
  std::vector<NodeId> order;
  if (empty()) return order;
  order.reserve(size());
  // Iterative postorder: push node, then children; emit on second visit.
  std::vector<std::pair<NodeId, bool>> stack;
  stack.emplace_back(root_, false);
  while (!stack.empty()) {
    auto [node, expanded] = stack.back();
    stack.pop_back();
    if (expanded) {
      order.push_back(node);
      continue;
    }
    stack.emplace_back(node, true);
    auto ch = children(node);
    for (auto it = ch.rbegin(); it != ch.rend(); ++it) {
      stack.emplace_back(*it, false);
    }
  }
  return order;
}

std::vector<NodeId> Tree::depths() const {
  std::vector<NodeId> d(size(), 0);
  // Parents have smaller ids than children is NOT guaranteed; walk from a
  // reverse postorder (parents before children).
  auto post = natural_postorder();
  for (auto it = post.rbegin(); it != post.rend(); ++it) {
    NodeId i = *it;
    d[i] = parent_[i] == kNoNode ? 0 : d[parent_[i]] + 1;
  }
  return d;
}

std::vector<double> Tree::weighted_depths() const {
  std::vector<double> d(size(), 0.0);
  auto post = natural_postorder();
  for (auto it = post.rbegin(); it != post.rend(); ++it) {
    NodeId i = *it;
    d[i] = (parent_[i] == kNoNode ? 0.0 : d[parent_[i]]) + work_[i];
  }
  return d;
}

std::vector<double> Tree::subtree_work() const {
  std::vector<double> w(size(), 0.0);
  for (NodeId i : natural_postorder()) {
    w[i] = work_[i];
    for (NodeId c : children(i)) w[i] += w[c];
  }
  return w;
}

double Tree::critical_path() const {
  double best = 0.0;
  for (double d : weighted_depths()) best = std::max(best, d);
  return best;
}

double Tree::total_work() const {
  double s = 0.0;
  for (double w : work_) s += w;
  return s;
}

Tree Tree::subtree(NodeId r, std::vector<NodeId>* old_of_new) const {
  std::vector<NodeId> nodes;  // BFS order: parent visited before child
  nodes.push_back(r);
  for (std::size_t k = 0; k < nodes.size(); ++k) {
    for (NodeId c : children(nodes[k])) nodes.push_back(c);
  }
  std::vector<NodeId> new_id(size(), kNoNode);
  for (std::size_t k = 0; k < nodes.size(); ++k) {
    new_id[nodes[k]] = static_cast<NodeId>(k);
  }
  std::vector<NodeId> parent(nodes.size());
  std::vector<MemSize> out(nodes.size()), exec(nodes.size());
  std::vector<double> work(nodes.size());
  for (std::size_t k = 0; k < nodes.size(); ++k) {
    NodeId old = nodes[k];
    parent[k] = old == r ? kNoNode : new_id[parent_[old]];
    out[k] = output_[old];
    exec[k] = exec_[old];
    work[k] = work_[old];
  }
  if (old_of_new) *old_of_new = nodes;
  return Tree(std::move(parent), std::move(out), std::move(exec),
              std::move(work));
}

NodeId Tree::height() const {
  NodeId h = 0;
  for (NodeId d : depths()) h = std::max(h, static_cast<NodeId>(d + 1));
  return h;
}

NodeId Tree::max_degree() const {
  NodeId d = 0;
  for (NodeId i = 0; i < size(); ++i) d = std::max(d, num_children(i));
  return d;
}

std::string Tree::describe() const {
  std::ostringstream os;
  os << "tree n=" << size() << " height=" << height()
     << " max_degree=" << max_degree() << " leaves=" << num_leaves()
     << " total_work=" << total_work() << " critical_path=" << critical_path();
  return os.str();
}

}  // namespace treesched

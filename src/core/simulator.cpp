#include "core/simulator.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace treesched {

SimulationResult simulate(const Tree& tree, const Schedule& s,
                          const SimulationOptions& opts) {
  const NodeId n = tree.size();
  if (s.size() != n) {
    throw std::invalid_argument("simulate: schedule size != tree size");
  }
  SimulationResult res;
  if (n == 0) return res;

  // Two event streams sorted by time: starts and finishes. At equal times,
  // finishes are applied before starts so that a task may begin exactly when
  // its child ends (and memory is not double counted across the boundary).
  std::vector<NodeId> by_start(n), by_finish(n);
  std::iota(by_start.begin(), by_start.end(), 0);
  by_finish = by_start;
  std::sort(by_start.begin(), by_start.end(), [&](NodeId a, NodeId b) {
    if (s.start[a] != s.start[b]) return s.start[a] < s.start[b];
    return a < b;
  });
  std::sort(by_finish.begin(), by_finish.end(), [&](NodeId a, NodeId b) {
    double fa = s.finish(tree, a), fb = s.finish(tree, b);
    if (fa != fb) return fa < fb;
    return a < b;
  });

  std::vector<char> done(static_cast<std::size_t>(n), 0);
  MemSize mem = 0;
  MemSize peak = 0;
  std::size_t fi = 0;  // cursor in by_finish

  auto record = [&](double t) {
    if (opts.record_profile) {
      if (!res.profile.empty() && res.profile.back().time == t) {
        res.profile.back().mem = mem;
      } else {
        res.profile.push_back({t, mem});
      }
    }
  };

  const double eps = 1e-9;
  for (NodeId idx : by_start) {
    const double t = s.start[idx];
    const double tol = eps * std::max(1.0, t);
    // Apply all finishes at time <= t (+tolerance).
    while (fi < by_finish.size() &&
           s.finish(tree, by_finish[fi]) <= t + tol) {
      NodeId f = by_finish[fi++];
      mem -= tree.exec_size(f);
      for (NodeId c : tree.children(f)) mem -= tree.output_size(c);
      done[f] = 1;
      record(s.finish(tree, f));
    }
    // Precedence check.
    for (NodeId c : tree.children(idx)) {
      if (!done[c]) {
        std::ostringstream os;
        os << "simulate: task " << idx << " starts at " << t
           << " but child " << c << " has not finished";
        throw std::invalid_argument(os.str());
      }
    }
    mem += tree.exec_size(idx) + tree.output_size(idx);
    peak = std::max(peak, mem);
    record(t);
  }
  // Drain remaining finishes.
  while (fi < by_finish.size()) {
    NodeId f = by_finish[fi++];
    mem -= tree.exec_size(f);
    for (NodeId c : tree.children(f)) mem -= tree.output_size(c);
    record(s.finish(tree, f));
  }
  res.makespan = s.makespan(tree);
  res.peak_memory = peak;
  res.final_memory = mem;  // = f_root
  return res;
}

MemSize sequential_peak_memory(const Tree& tree,
                               const std::vector<NodeId>& order) {
  if (static_cast<NodeId>(order.size()) != tree.size()) {
    throw std::invalid_argument("sequential_peak_memory: bad order length");
  }
  MemSize mem = 0, peak = 0;
  for (NodeId i : order) {
    mem += tree.exec_size(i) + tree.output_size(i);
    peak = std::max(peak, mem);
    mem -= tree.exec_size(i);
    for (NodeId c : tree.children(i)) mem -= tree.output_size(c);
  }
  return peak;
}

}  // namespace treesched

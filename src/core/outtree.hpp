#pragma once
// Out-tree scheduling via time reversal.
//
// The paper (§1) notes that in-trees and out-trees are equivalent: "a
// solution for an in-tree can be transformed into a solution for the
// corresponding out-tree by just reversing the arrow of time" [9]. This
// module makes that equivalence executable.
//
// Out-tree semantics on the same Tree storage (edges kept child->parent):
//  * dependencies are reversed: task i is ready once parent(i) completed
//    (the root starts first);
//  * when task j STARTS it allocates its execution file n_j plus one output
//    file f_c for every child c (the data it hands down the tree);
//  * when j FINISHES it frees n_j and its own input file f_j (which its
//    parent produced); the root's input f_root is resident from time 0
//    (it is the initial problem data).
// Reversing a feasible in-tree schedule in time yields a feasible out-tree
// schedule with the SAME makespan and the SAME peak memory, so every
// in-tree heuristic doubles as an out-tree heuristic.

#include "core/schedule.hpp"
#include "core/simulator.hpp"
#include "core/tree.hpp"

namespace treesched {

/// Reverses the arrow of time: start'[i] = makespan - finish[i].
/// A feasible in-tree schedule becomes a feasible out-tree schedule of the
/// same tree (and vice versa -- the transform is an involution).
Schedule reverse_schedule(const Tree& tree, const Schedule& s);

/// Replays `s` under OUT-tree semantics; throws std::invalid_argument on
/// dependency violations. Returns makespan / peak / final memory, where
/// final memory is the sum of the leaves' downward outputs... zero, since
/// leaves produce nothing; what remains resident at the end is nothing.
SimulationResult simulate_out_tree(const Tree& tree, const Schedule& s,
                                   const SimulationOptions& opts = {});

/// Validation under out-tree precedences (parent before child).
ValidationResult validate_out_tree_schedule(const Tree& tree,
                                            const Schedule& s, int p);

}  // namespace treesched

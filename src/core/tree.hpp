#pragma once
// In-tree task graph model (paper §3.1).
//
// A tree of n tasks, ids 0..n-1. Task i carries:
//   - exec_size(i)   n_i : bytes of the execution file (program),
//   - output_size(i) f_i : bytes of the output file handed to the parent,
//   - work(i)        w_i : processing time.
// Edges point child -> parent; a task is ready once all children completed.
//
// The Tree is an immutable value type built through TreeBuilder (or the
// parent-array constructor) and stores children in CSR form, so traversals
// are cache-friendly and allocation-free.

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace treesched {

using NodeId = std::int32_t;
using MemSize = std::uint64_t;

inline constexpr NodeId kNoNode = -1;

class Tree;

/// Incremental construction helper. Nodes may be added in any order; the
/// parent of the root is kNoNode. `build()` validates (single root, acyclic,
/// connected) and produces the immutable Tree.
class TreeBuilder {
 public:
  /// Appends a node and returns its id.
  NodeId add_node(NodeId parent, MemSize output_size, MemSize exec_size,
                  double work);

  /// Number of nodes added so far.
  [[nodiscard]] NodeId size() const {
    return static_cast<NodeId>(parent_.size());
  }

  /// Re-parent a previously added node (used by generators that discover
  /// the structure top-down).
  void set_parent(NodeId node, NodeId parent);

  /// Validates and builds. Throws std::invalid_argument on malformed input.
  [[nodiscard]] Tree build() &&;

 private:
  std::vector<NodeId> parent_;
  std::vector<MemSize> output_;
  std::vector<MemSize> exec_;
  std::vector<double> work_;
};

/// Immutable rooted in-tree with per-task weights.
class Tree {
 public:
  Tree() = default;

  /// Builds from parallel arrays; `parent[root] == kNoNode`.
  Tree(std::vector<NodeId> parent, std::vector<MemSize> output_size,
       std::vector<MemSize> exec_size, std::vector<double> work);

  [[nodiscard]] NodeId size() const {
    return static_cast<NodeId>(parent_.size());
  }
  [[nodiscard]] bool empty() const { return parent_.empty(); }
  [[nodiscard]] NodeId root() const { return root_; }

  [[nodiscard]] NodeId parent(NodeId i) const { return parent_[i]; }
  [[nodiscard]] MemSize output_size(NodeId i) const { return output_[i]; }
  [[nodiscard]] MemSize exec_size(NodeId i) const { return exec_[i]; }
  [[nodiscard]] double work(NodeId i) const { return work_[i]; }

  [[nodiscard]] std::span<const NodeId> children(NodeId i) const {
    return {child_list_.data() + child_begin_[i],
            child_list_.data() + child_begin_[i + 1]};
  }
  [[nodiscard]] NodeId num_children(NodeId i) const {
    return static_cast<NodeId>(child_begin_[i + 1] - child_begin_[i]);
  }
  [[nodiscard]] bool is_leaf(NodeId i) const { return num_children(i) == 0; }

  /// Memory needed while task i runs: sum of input files + n_i + f_i.
  [[nodiscard]] MemSize processing_memory(NodeId i) const;

  /// Number of leaves.
  [[nodiscard]] NodeId num_leaves() const;

  /// Nodes in some (children-before-parent) postorder: a valid sequential
  /// processing order. Natural child order; deterministic.
  [[nodiscard]] std::vector<NodeId> natural_postorder() const;

  /// Depth in edges from the root (root has depth 0).
  [[nodiscard]] std::vector<NodeId> depths() const;

  /// w-weighted distance from node to root, *including* the node's own w_i
  /// (the paper's node depth for ParDeepestFirst, §5.3).
  [[nodiscard]] std::vector<double> weighted_depths() const;

  /// Total work of the subtree rooted at each node (W_i in the paper).
  [[nodiscard]] std::vector<double> subtree_work() const;

  /// Length of the w-weighted critical path (max weighted depth).
  [[nodiscard]] double critical_path() const;

  /// Sum of all task works.
  [[nodiscard]] double total_work() const;

  /// Extracts the subtree rooted at `r` as a standalone Tree.
  /// `old_of_new[k]` maps the new tree's node k back to this tree's id.
  [[nodiscard]] Tree subtree(NodeId r, std::vector<NodeId>* old_of_new = nullptr) const;

  /// Height: number of nodes on the longest root-to-leaf path.
  [[nodiscard]] NodeId height() const;

  /// Maximum out-degree (number of children) over all nodes.
  [[nodiscard]] NodeId max_degree() const;

  /// Human-readable one-line summary (size, height, degree, total weights).
  [[nodiscard]] std::string describe() const;

 private:
  void build_children();

  std::vector<NodeId> parent_;
  std::vector<MemSize> output_;
  std::vector<MemSize> exec_;
  std::vector<double> work_;
  // CSR children adjacency.
  std::vector<std::int64_t> child_begin_;
  std::vector<NodeId> child_list_;
  NodeId root_ = kNoNode;
};

}  // namespace treesched

#pragma once
// Lower bounds used throughout the evaluation (paper §6.3, Figure 6):
//  * memory: the optimal sequential postorder peak (the paper's reference;
//    within 1% of the true optimum on 95.8% of their instances) and the
//    true sequential optimum from Liu's exact algorithm. Adding processors
//    can never reduce the required memory, so both are valid parallel
//    memory lower bounds (the Liu bound is the tight one).
//  * makespan: max(total work / p, w-weighted critical path).

#include "core/tree.hpp"

namespace treesched {

struct LowerBounds {
  MemSize memory_postorder = 0;  ///< best postorder peak (paper's reference)
  MemSize memory_exact = 0;      ///< Liu's exact sequential optimum
  double makespan = 0.0;         ///< max(W/p, critical path)
};

/// Computes all bounds. Set `exact_memory` to false to skip Liu's O(n^2)
/// algorithm on very large trees (memory_exact is then copied from the
/// postorder bound).
LowerBounds lower_bounds(const Tree& tree, int p, bool exact_memory = true);

/// Makespan bound only (no memory machinery).
double makespan_lower_bound(const Tree& tree, int p);

}  // namespace treesched

#include "core/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace treesched {

namespace {
// Tolerance for floating-point time comparisons. Task works can be large
// (up to ~1e12 in assembly trees), so the tolerance is relative.
bool time_lt(double a, double b) { return a < b - 1e-9 * std::max(1.0, std::max(std::abs(a), std::abs(b))); }
}  // namespace

double Schedule::makespan(const Tree& tree) const {
  double m = 0.0;
  for (NodeId i = 0; i < size(); ++i) m = std::max(m, finish(tree, i));
  return m;
}

std::vector<NodeId> Schedule::by_start_time() const {
  std::vector<NodeId> order(start.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (start[a] != start[b]) return start[a] < start[b];
    return a < b;
  });
  return order;
}

Schedule sequential_schedule(const Tree& tree,
                             const std::vector<NodeId>& order) {
  Schedule s(tree.size());
  double t = 0.0;
  for (NodeId i : order) {
    s.start[i] = t;
    s.proc[i] = 0;
    t += tree.work(i);
  }
  return s;
}

ValidationResult validate_schedule(const Tree& tree, const Schedule& s,
                                   int p) {
  ValidationResult res;
  auto fail = [&](const std::string& msg) {
    res.ok = false;
    res.error = msg;
    return res;
  };
  const NodeId n = tree.size();
  if (s.size() != n) return fail("schedule size != tree size");
  for (NodeId i = 0; i < n; ++i) {
    if (!(s.start[i] >= 0.0) || !std::isfinite(s.start[i])) {
      return fail("task has invalid start time");
    }
    if (s.proc[i] < 0 || s.proc[i] >= p) {
      std::ostringstream os;
      os << "task " << i << " on processor " << s.proc[i] << " outside [0,"
         << p << ")";
      return fail(os.str());
    }
  }
  // Precedence: children must finish before the parent starts.
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId c : tree.children(i)) {
      if (time_lt(s.start[i], s.finish(tree, c))) {
        std::ostringstream os;
        os << "task " << i << " starts at " << s.start[i]
           << " before child " << c << " finishes at " << s.finish(tree, c);
        return fail(os.str());
      }
    }
  }
  // Per-processor overlap: sort each processor's tasks by start time.
  std::vector<std::vector<NodeId>> per_proc(static_cast<std::size_t>(p));
  for (NodeId i = 0; i < n; ++i) per_proc[s.proc[i]].push_back(i);
  for (auto& tasks : per_proc) {
    std::sort(tasks.begin(), tasks.end(), [&](NodeId a, NodeId b) {
      return s.start[a] < s.start[b];
    });
    for (std::size_t k = 1; k < tasks.size(); ++k) {
      NodeId prev = tasks[k - 1], cur = tasks[k];
      if (time_lt(s.start[cur], s.finish(tree, prev))) {
        std::ostringstream os;
        os << "tasks " << prev << " and " << cur << " overlap on processor "
           << s.proc[cur];
        return fail(os.str());
      }
    }
  }
  return res;
}

}  // namespace treesched

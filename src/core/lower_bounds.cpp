#include "core/lower_bounds.hpp"

#include <algorithm>

#include "sequential/liu.hpp"
#include "sequential/postorder.hpp"

namespace treesched {

double makespan_lower_bound(const Tree& tree, int p) {
  if (tree.empty() || p < 1) return 0.0;
  return std::max(tree.total_work() / static_cast<double>(p),
                  tree.critical_path());
}

LowerBounds lower_bounds(const Tree& tree, int p, bool exact_memory) {
  LowerBounds lb;
  lb.memory_postorder = best_postorder_memory(tree);
  lb.memory_exact =
      exact_memory ? min_sequential_memory(tree) : lb.memory_postorder;
  lb.makespan = makespan_lower_bound(tree, p);
  return lb;
}

}  // namespace treesched

#pragma once
// Schedule inspection utilities: per-processor statistics, ASCII Gantt
// charts for small instances, and CSV export of the memory profile and the
// task trace for external plotting.

#include <iosfwd>
#include <string>
#include <vector>

#include "core/schedule.hpp"
#include "core/simulator.hpp"
#include "core/tree.hpp"

namespace treesched {

/// Per-processor utilization statistics of a schedule.
struct ProcessorStats {
  int proc = 0;
  int tasks = 0;
  double busy = 0.0;        ///< total work executed
  double utilization = 0.0; ///< busy / makespan (0 for empty schedules)
};

struct ScheduleStats {
  double makespan = 0.0;
  MemSize peak_memory = 0;
  double total_work = 0.0;
  double avg_utilization = 0.0;  ///< over processors that ran >= 1 task
  int processors_used = 0;
  std::vector<ProcessorStats> per_proc;
};

/// Computes the statistics of a feasible schedule on p processors.
ScheduleStats schedule_stats(const Tree& tree, const Schedule& s, int p);

/// Renders a one-line-per-processor ASCII Gantt chart. Each task is drawn
/// as its id repeated over its time span, scaled to `width` columns.
/// Intended for small trees (ids > 9 are drawn with '#').
void ascii_gantt(std::ostream& os, const Tree& tree, const Schedule& s,
                 int p, int width = 72);

/// Writes "time,memory" CSV rows of the memory profile.
void write_memory_profile_csv(std::ostream& os, const Tree& tree,
                              const Schedule& s);

/// Writes "task,proc,start,finish,work,out,exec" CSV rows.
void write_schedule_csv(std::ostream& os, const Tree& tree,
                        const Schedule& s);

/// Reads a schedule written by write_schedule_csv (tasks may be in any
/// order; missing tasks raise std::runtime_error).
Schedule read_schedule_csv(std::istream& is, const Tree& tree);

}  // namespace treesched

#pragma once
// Minimal blocking client (src/net/): connects to a schedule_server
// over TCP or a unix-domain socket, speaking either protocol — text v2
// (send request lines, read response lines) or binary v3 (the magic is
// sent on connect; requests and responses ride length-prefixed frames,
// net/frame.hpp). One socket, one thread — callers wanting concurrency
// run N Clients on N threads (exactly what bench_service's loopback
// experiment does).
//
//   Client c("127.0.0.1", port);                      // text v2
//   Client b("127.0.0.1", port, Protocol::kV3);      // binary v3
//   ResponseLine r = b.request("random:500:1 ParSubtrees 8 id=1");
//   b.send_batch({"t Liu 1 id=1", "t Liu 2 id=2"});  // one frame/write
//   while (auto resp = b.recv_response()) ...        // tagged answers
//
// request()/send_request()/recv_response() work identically in both
// modes (text framing vs binary frames under the hood), so protocol
// comparisons drive the same call sites. shutdown_write() half-closes
// (the server answers what is pending, then closes); destroying the
// Client without it is the abrupt-disconnect path the server must
// survive.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "service/request_line.hpp"

namespace treesched::net {

enum class Protocol { kText, kV3 };

class Client {
 public:
  /// Blocking TCP connect; throws std::system_error on failure. In kV3
  /// mode the magic is sent before the constructor returns.
  Client(const std::string& host, std::uint16_t port,
         Protocol protocol = Protocol::kText);

  /// Blocking unix-domain-socket connect to a --unix server.
  static Client connect_unix(const std::string& path,
                             Protocol protocol = Protocol::kText);

  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  [[nodiscard]] Protocol protocol() const { return protocol_; }

  /// Writes `line` + '\n', looping over partial writes. Text mode only.
  /// Throws std::system_error when the peer is gone.
  void send_line(const std::string& line);

  /// Next response line, or std::nullopt at EOF. Text mode only.
  std::optional<std::string> recv_line();

  /// One request in the connection's protocol: a text line, or a
  /// kRequest frame carrying the same grammar.
  void send_request(const std::string& line);

  /// Pipelines every request in ONE write: newline-joined lines (text)
  /// or a single kBatch frame (v3). Answers arrive via recv_response().
  void send_batch(const std::vector<std::string>& lines);

  /// Next response in the connection's protocol, or std::nullopt at
  /// orderly EOF. Throws on socket errors, a malformed response, or an
  /// EOF that truncates a binary frame.
  std::optional<ResponseLine> recv_response();

  /// send_request + recv_response. Throws on EOF or a malformed
  /// response. Only correct while no other request is in flight on this
  /// connection (a strictly synchronous client).
  ResponseLine request(const std::string& line);

  /// Half-close: tells the server this client is done sending; pending
  /// answers still arrive (read them with recv_response until nullopt).
  void shutdown_write();

  /// Abrupt close (also what the destructor does): the server cancels
  /// whatever this client still had queued.
  void close();

  [[nodiscard]] int fd() const { return fd_; }

 private:
  Client() = default;  ///< for connect_unix
  void send_all(const char* data, std::size_t len, const char* what);
  void finish_connect();  ///< v3: sends the magic

  int fd_ = -1;
  Protocol protocol_ = Protocol::kText;
  std::string rbuf_;
  std::size_t rpos_ = 0;
  FrameReader reader_;  ///< v3 response framing
};

}  // namespace treesched::net

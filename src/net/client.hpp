#pragma once
// Minimal blocking protocol-v2 client (src/net/): connects to a
// schedule_server, sends request lines, reads response lines. One
// socket, one thread — callers wanting concurrency run N Clients on N
// threads (exactly what bench_service's loopback experiment does).
//
//   Client c("127.0.0.1", port);
//   ResponseLine r = c.request("random:500:1 ParSubtrees 8 id=1");
//   c.send_line("ping");
//   auto pong = c.recv_line();     // "pong"
//
// recv_line() buffers and splits on '\n' (stripping a trailing '\r'),
// returning std::nullopt at orderly EOF. shutdown_write() half-closes
// (the server answers what is pending, then closes); destroying the
// Client without it is the abrupt-disconnect path the server must
// survive.

#include <cstdint>
#include <optional>
#include <string>

#include "service/request_line.hpp"

namespace treesched::net {

class Client {
 public:
  /// Blocking connect; throws std::system_error on failure.
  Client(const std::string& host, std::uint16_t port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Writes `line` + '\n', looping over partial writes. Throws
  /// std::system_error when the peer is gone.
  void send_line(const std::string& line);

  /// Next response line, or std::nullopt at EOF. Throws on socket
  /// errors.
  std::optional<std::string> recv_line();

  /// send_line + recv_line + parse_response_line. Throws on EOF or a
  /// malformed response. Only correct while no other request is in
  /// flight on this connection (a strictly synchronous client).
  ResponseLine request(const std::string& line);

  /// Half-close: tells the server this client is done sending; pending
  /// answers still arrive (read them with recv_line until nullopt).
  void shutdown_write();

  /// Abrupt close (also what the destructor does): the server cancels
  /// whatever this client still had queued.
  void close();

  [[nodiscard]] int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::string rbuf_;
  std::size_t rpos_ = 0;
};

}  // namespace treesched::net

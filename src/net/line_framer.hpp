#pragma once
// Incremental newline framing for the TCP front-end (layer 1 of
// src/net/): turns an arbitrary sequence of read() chunks into protocol
// lines, no matter how the kernel fragments them — one byte at a time,
// a dozen lines per chunk, or a line split mid-token across reads.
//
//   LineFramer framer(max_line);
//   for (Line& line : framer.feed(buf, n)) ...   // per read()
//   if (auto last = framer.finish()) ...         // at EOF/half-close
//
// A line longer than `max_line` bytes is a protocol violation by the
// client, not a reason to buffer without bound or to kill the
// connection: the framer drops the excess, keeps scanning for the
// terminating '\n', and emits the line with `overflow = true` (text
// truncated to the limit) so the caller can answer a typed bad_request
// — and the connection survives, correctly framed, from the next line
// on.
//
// A trailing '\r' is stripped (CRLF clients: nc, telnet, load
// balancers). finish() flushes a final unterminated line at EOF — the
// same grace std::getline gives the stdin front-end.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace treesched::net {

class LineFramer {
 public:
  struct Line {
    std::string text;
    /// The line exceeded max_line: `text` holds only the first
    /// max_line bytes; the rest was discarded up to the newline.
    bool overflow = false;
    /// Bytes the line carried on the wire (excluding the terminator),
    /// including any discarded overflow.
    std::size_t wire_bytes = 0;
  };

  explicit LineFramer(std::size_t max_line = kDefaultMaxLine)
      : max_line_(max_line) {}

  /// Consumes one read() chunk; returns every line it completed, in
  /// order. Partial data is buffered for the next feed.
  std::vector<Line> feed(const char* data, std::size_t len);

  /// EOF: the final unterminated line, if any bytes are buffered.
  std::optional<Line> finish();

  /// Bytes currently buffered for an incomplete line (bounded by
  /// max_line even while an oversized line streams in).
  [[nodiscard]] std::size_t partial_bytes() const { return partial_.size(); }

  [[nodiscard]] std::size_t max_line() const { return max_line_; }

  static constexpr std::size_t kDefaultMaxLine = 64 * 1024;

 private:
  Line take_line();

  std::size_t max_line_;
  std::string partial_;
  /// Wire bytes of the in-progress line beyond what partial_ holds.
  std::size_t dropped_ = 0;
};

}  // namespace treesched::net

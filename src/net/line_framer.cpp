#include "net/line_framer.hpp"

#include <utility>

namespace treesched::net {

LineFramer::Line LineFramer::take_line() {
  Line line;
  line.overflow = dropped_ > 0;
  line.wire_bytes = partial_.size() + dropped_;
  if (!partial_.empty() && partial_.back() == '\r' && dropped_ == 0) {
    // CRLF: the '\r' belongs to the terminator, not the text. An
    // overflowed line keeps whatever truncated prefix it has — it is
    // answered bad_request regardless.
    partial_.pop_back();
  }
  line.text = std::move(partial_);
  partial_.clear();
  dropped_ = 0;
  return line;
}

std::vector<LineFramer::Line> LineFramer::feed(const char* data,
                                               std::size_t len) {
  std::vector<Line> lines;
  for (std::size_t i = 0; i < len; ++i) {
    const char c = data[i];
    if (c == '\n') {
      lines.push_back(take_line());
      continue;
    }
    if (partial_.size() < max_line_) {
      partial_.push_back(c);
    } else {
      // Oversized line: stop buffering, keep counting until the
      // newline resynchronizes the stream.
      ++dropped_;
    }
  }
  return lines;
}

std::optional<LineFramer::Line> LineFramer::finish() {
  if (partial_.empty() && dropped_ == 0) return std::nullopt;
  return take_line();
}

}  // namespace treesched::net

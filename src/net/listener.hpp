#pragma once
// Non-blocking TCP listening socket (src/net/): binds 127.0.0.1:<port>
// (port 0 = kernel-assigned ephemeral, read back through port()),
// listens, and hands accepted fds to the server — already
// O_NONBLOCK'd, TCP_NODELAY'd and ready for the event loop.
//
// The bind happens in the constructor, so a caller that starts the
// loop on a background thread (tests, bench_service's loopback
// experiment) can read port() immediately — no listen/connect race.

#include <cstdint>
#include <functional>

namespace treesched::net {

class Listener {
 public:
  /// Binds and listens, throwing std::system_error on failure
  /// (EADDRINUSE and friends).
  explicit Listener(std::uint16_t port);
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  [[nodiscard]] int fd() const { return fd_; }
  /// The bound port — the kernel's pick when constructed with 0.
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Accepts every pending connection (until EAGAIN), invoking `sink`
  /// with each new non-blocking fd. Call from the EPOLLIN handler.
  void accept_ready(const std::function<void(int fd)>& sink);

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace treesched::net

#pragma once
// Non-blocking listening socket (src/net/): TCP on a configurable bind
// address (default 127.0.0.1; port 0 = kernel-assigned ephemeral, read
// back through port()) or a unix-domain socket at a filesystem path —
// for same-box clients and benches that want the loopback TCP stack out
// of the measurement. Accepted fds are handed to the server already
// O_NONBLOCK'd (and TCP_NODELAY'd when TCP), ready for the event loop.
//
// The bind happens in the constructor, so a caller that starts the
// loop on a background thread (tests, bench_service's loopback
// experiment) can read port() immediately — no listen/connect race.

#include <cstdint>
#include <functional>
#include <string>

namespace treesched::net {

struct ListenerConfig {
  /// IPv4 address to bind (TCP mode). "0.0.0.0" opens the listener to
  /// the network — loopback is the safe default.
  std::string bind = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral (TCP mode)
  /// Nonempty = listen on a unix-domain socket at this path instead of
  /// TCP (`bind`/`port` are ignored). A stale socket file left by a
  /// previous run is removed; the file is unlinked again on teardown.
  std::string unix_path;
};

class Listener {
 public:
  /// Binds and listens, throwing std::system_error on failure
  /// (EADDRINUSE and friends).
  explicit Listener(const ListenerConfig& config);
  /// TCP on 127.0.0.1:<port> — the pre-UDS constructor, kept delegating.
  explicit Listener(std::uint16_t port)
      : Listener(ListenerConfig{"127.0.0.1", port, {}}) {}
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  [[nodiscard]] int fd() const { return fd_; }
  /// The bound TCP port — the kernel's pick when constructed with 0;
  /// 0 in unix-socket mode.
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] bool is_unix() const { return !unix_path_.empty(); }
  /// Printable endpoint: "<bind>:<port>" or "unix:<path>".
  [[nodiscard]] const std::string& address() const { return address_; }

  /// Accepts every pending connection (until EAGAIN), invoking `sink`
  /// with each new non-blocking fd. Call from the EPOLLIN handler.
  void accept_ready(const std::function<void(int fd)>& sink);

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::string unix_path_;
  std::string address_;
};

}  // namespace treesched::net

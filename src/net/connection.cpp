#include "net/connection.hpp"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <utility>

#include "net/server.hpp"
#include "service/errors.hpp"
#include "service/service.hpp"

namespace treesched::net {

Connection::Connection(Server& server, int fd, std::uint64_t id)
    : server_(server),
      fd_(fd),
      id_(id),
      framer_(server.config().max_line) {
  interest_ = EPOLLIN;
  server_.loop().add(fd_, interest_,
                     [this](std::uint32_t events) { handle_events(events); });
}

Connection::~Connection() {
  // A vanished client's queued work must not occupy a worker: cancel
  // whatever is still cancellable. Tickets a worker already picked up
  // run to completion; their settlements post to the loop, find this
  // connection gone, and are dropped (the server's outstanding-ticket
  // count is kept by Server::ticket_settled either way).
  for (Pending& p : pending_) {
    if (!p.result.has_value() && p.ticket.valid()) (void)p.ticket.cancel();
  }
  server_.loop().remove(fd_);
  ::close(fd_);
}

void Connection::handle_events(std::uint32_t events) {
  if (events & EPOLLERR) {
    abort_connection();
    return;
  }
  if (events & EPOLLOUT) {
    send_buffered();
    if (closing_) return;
  }
  if (events & EPOLLIN) {
    on_readable();
    if (closing_) return;
  } else if (events & EPOLLHUP) {
    // Peer fully closed and nothing left to read: any buffered answers
    // are undeliverable.
    abort_connection();
    return;
  }
  update_interest();
  finish_if_drained();
}

void Connection::on_readable() {
  std::array<char, 16384> buf;
  while (!read_closed_ && !closing_) {
    const ssize_t n = ::read(fd_, buf.data(), buf.size());
    if (n > 0) {
      for (const LineFramer::Line& line :
           framer_.feed(buf.data(), static_cast<std::size_t>(n))) {
        handle_line(line);
        if (closing_) return;
      }
      // Backpressure: a client that outpaces its own reading stops
      // being read until it drains us below the low watermark.
      if (wbuf_.size() - wbuf_head_ > server_.config().max_wbuf) break;
      continue;
    }
    if (n == 0) {
      // Orderly EOF (half-close): the client said "no more requests,
      // now answer me". A final unterminated line still counts — the
      // same grace std::getline gives the stdin front-end.
      read_closed_ = true;
      if (const auto last = framer_.finish()) handle_line(*last);
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    abort_connection();  // ECONNRESET and friends
    return;
  }
  flush_ready();
  send_buffered();
}

void Connection::handle_line(const LineFramer::Line& line) {
  ++server_.counters().lines;
  if (line.overflow) {
    push_settled_error(std::nullopt, ErrorCode::kBadRequest,
                       "request line of " + std::to_string(line.wire_bytes) +
                           " bytes exceeds the " +
                           std::to_string(framer_.max_line()) +
                           "-byte limit");
    return;
  }
  std::string text = line.text;
  const auto hash_pos = text.find('#');
  if (hash_pos != std::string::npos) text.resize(hash_pos);
  if (text.find_first_not_of(" \t\r") == std::string::npos) return;

  RequestLine parsed;
  try {
    parsed = parse_request_line(text);
  } catch (const std::exception& e) {
    // Untagged: a positional client correlates responses by line, so
    // the error must keep its place in the stream.
    push_settled_error(std::nullopt, ErrorCode::kBadRequest, e.what());
    return;
  }
  switch (parsed.kind) {
    case RequestLine::Kind::kCancel:
      handle_cancel(*parsed.id);
      break;
    case RequestLine::Kind::kPing:
      handle_ping(parsed);
      break;
    case RequestLine::Kind::kStats:
      handle_stats(parsed);
      break;
    case RequestLine::Kind::kSchedule:
      handle_schedule(parsed);
      break;
  }
  flush_ready();
}

void Connection::handle_schedule(const RequestLine& parsed) {
  if (parsed.id && has_pending_tag(*parsed.id)) {
    push_settled_error(std::nullopt, ErrorCode::kBadRequest,
                       "duplicate id=" + std::to_string(*parsed.id) +
                           " (a request with this tag is still pending)");
    return;
  }
  if (inflight_ >= server_.config().max_pending) {
    // The per-connection admission bound: typed, immediate, and cheap —
    // the service never sees the request.
    const std::string msg =
        "connection window full (" +
        std::to_string(server_.config().max_pending) +
        " requests in flight); read some answers first";
    if (parsed.id) {
      emit_error(parsed.id, ErrorCode::kQueueFull, msg);
    } else {
      push_settled_error(std::nullopt, ErrorCode::kQueueFull, msg);
    }
    return;
  }

  Pending pending;
  pending.key = next_key_++;
  pending.id = parsed.id;
  pending.algo = parsed.algo;
  pending.p = parsed.p;
  pending.priority = parsed.priority;
  Result<TreeHandle, ServiceError> handle =
      server_.intern_spec(parsed.tree_spec);
  if (!handle.ok()) {
    // Answer in place for tagged lines, in order for untagged ones.
    const ServiceError& err = handle.error();
    if (parsed.id) {
      emit_error(parsed.id, err.code, err.message);
    } else {
      push_settled_error(parsed.id, err.code, err.message);
    }
    return;
  }
  ScheduleRequest req;
  req.tree = handle.value();
  pending.tree_hash = req.tree.hash;
  pending.n = req.tree->size();
  req.algo = parsed.algo;
  req.p = parsed.p;
  req.memory_cap = parsed.memory_cap;
  req.priority = parsed.priority;
  req.deadline_ms = parsed.deadline_ms;

  server_.note_submitted();
  Ticket ticket = server_.service().submit(std::move(req));
  const std::uint64_t key = pending.key;
  pending.ticket = std::move(ticket);
  ++inflight_;
  Ticket& stored = pending_.emplace_back(std::move(pending)).ticket;
  // Attached after the entry is in the window: an already-settled
  // ticket (service-level queue_full) fires inline, posts, and the
  // posted deliver() finds its entry.
  stored.on_complete(
      [srv = &server_, cid = id_, key](const ServiceResult& result) {
        srv->ticket_settled(cid, key, result);
      });
}

void Connection::handle_cancel(std::uint64_t cancel_id) {
  Pending* target = nullptr;
  for (Pending& p : pending_) {
    if (p.id && *p.id == cancel_id) {
      target = &p;
      break;
    }
  }
  if (!target) {
    // Untagged ack (a late cancel racing the answer must not put a
    // second id=N line on the wire), held in stream order.
    push_settled_error(std::nullopt, ErrorCode::kBadRequest,
                       "cancel id=" + std::to_string(cancel_id) +
                           ": no pending request with this id");
    return;
  }
  if (!target->ticket.valid() || target->result.has_value() ||
      !target->ticket.cancel()) {
    push_settled_error(std::nullopt, ErrorCode::kBadRequest,
                       "cancel id=" + std::to_string(cancel_id) +
                           ": request already running or answered");
  }
  // On success the ticket settled with code=cancelled; its completion
  // is already posted to the loop and deliver() emits the answer.
}

void Connection::handle_ping(const RequestLine& parsed) {
  // Health checks bypass the pending window: a server drowning in Bulk
  // work still answers its load balancer immediately.
  ResponseLine line;
  line.kind = ResponseLine::Kind::kPong;
  line.ok = true;
  line.id = parsed.id;
  append_line(format_response_line(line));
}

void Connection::handle_stats(const RequestLine& parsed) {
  const ServerCounters& sc = server_.counters();
  ResponseLine line;
  line.kind = ResponseLine::Kind::kStats;
  line.ok = true;
  line.id = parsed.id;
  // Transport-specific counters first, then the shared service
  // vocabulary (service_stats_pairs keeps both front-ends aligned).
  line.stats = {
      {"conns", server_.conns_.size()},
      {"accepted", sc.accepted},
      {"rejected_conns", sc.rejected_conns},
      {"lines", sc.lines},
      {"submitted", sc.submitted},
      {"outstanding", server_.outstanding_},
  };
  for (auto& pair : service_stats_pairs(server_.service())) {
    line.stats.push_back(std::move(pair));
  }
  append_line(format_response_line(line));
}

void Connection::deliver(std::uint64_t key, const ServiceResult& result) {
  for (Pending& p : pending_) {
    if (p.key != key) continue;
    if (!p.result.has_value()) {
      p.result = result;
      --inflight_;
    }
    break;
  }
  flush_ready();
  send_buffered();
  update_interest();
  finish_if_drained();
}

void Connection::flush_ready() {
  // The settled in-order prefix answers first…
  while (!pending_.empty() && pending_.front().result.has_value()) {
    emit(pending_.front(), *pending_.front().result);
    pending_.pop_front();
  }
  // …then any settled id=-tagged entry anywhere in the window (the tag
  // makes an out-of-order line attributable).
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->id && it->result.has_value()) {
      emit(*it, *it->result);
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

void Connection::emit(const Pending& pending, const ServiceResult& result) {
  ResponseLine line;
  line.id = pending.id;
  if (result.ok()) {
    const ScheduleResponse& resp = result.value();
    line.ok = true;
    line.tree_hash = pending.tree_hash;
    line.n = pending.n;
    line.algo = pending.algo;
    line.p = pending.p;
    line.makespan = resp.makespan;
    line.peak_memory = resp.peak_memory;
    line.cache_hit = resp.cache_hit;
    line.priority = pending.priority;
  } else {
    line.ok = false;
    line.code = result.error().code;
    line.message = result.error().message;
  }
  append_line(format_response_line(line));
}

void Connection::emit_error(std::optional<std::uint64_t> id, ErrorCode code,
                            const std::string& message) {
  ResponseLine line;
  line.ok = false;
  line.id = id;
  line.code = code;
  line.message = message;
  append_line(format_response_line(line));
}

void Connection::push_settled_error(std::optional<std::uint64_t> id,
                                    ErrorCode code, std::string message) {
  Pending pending;
  pending.key = next_key_++;
  pending.id = id;
  pending.result = ServiceResult(ServiceError{code, std::move(message), nullptr});
  pending_.push_back(std::move(pending));
}

bool Connection::has_pending_tag(std::uint64_t tag) const {
  for (const Pending& p : pending_) {
    if (p.id && *p.id == tag) return true;
  }
  return false;
}

void Connection::append_line(std::string line) {
  line.push_back('\n');
  wbuf_ += line;
}

void Connection::send_buffered() {
  while (wbuf_head_ < wbuf_.size()) {
    const ssize_t n =
        ::send(fd_, wbuf_.data() + wbuf_head_, wbuf_.size() - wbuf_head_,
               MSG_NOSIGNAL);
    if (n > 0) {
      wbuf_head_ += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // EPIPE/ECONNRESET: the client is gone; buffered answers are
    // undeliverable and queued work is cancelled.
    abort_connection();
    return;
  }
  if (wbuf_head_ == wbuf_.size()) {
    wbuf_.clear();
    wbuf_head_ = 0;
  } else if (wbuf_head_ > 65536 && wbuf_head_ * 2 > wbuf_.size()) {
    wbuf_.erase(0, wbuf_head_);
    wbuf_head_ = 0;
  }
}

void Connection::update_interest() {
  if (closing_) return;
  // Hysteresis: stop reading past the high watermark, resume only once
  // the client has drained us below half — no flapping per send cycle.
  const std::size_t buffered = wbuf_.size() - wbuf_head_;
  if (buffered > server_.config().max_wbuf) {
    paused_reads_ = true;
  } else if (buffered <= server_.config().max_wbuf / 2) {
    paused_reads_ = false;
  }
  std::uint32_t want = 0;
  if (!read_closed_ && !paused_reads_) want |= EPOLLIN;
  if (wbuf_head_ < wbuf_.size()) want |= EPOLLOUT;
  if (want != interest_) {
    server_.loop().modify(fd_, want);
    interest_ = want;
  }
}

void Connection::begin_drain() {
  // Stop reading — bytes already framed keep their answers, new ones
  // are ignored — and close once the window answers and flushes.
  read_closed_ = true;
  flush_ready();
  send_buffered();
  update_interest();
  finish_if_drained();
}

void Connection::abort_connection() {
  if (closing_) return;
  closing_ = true;
  server_.defer_close(id_);
}

void Connection::finish_if_drained() {
  if (closing_ || !read_closed_) return;
  if (pending_.empty() && wbuf_head_ == wbuf_.size()) {
    closing_ = true;
    server_.defer_close(id_);
  }
}

}  // namespace treesched::net

#include "net/connection.hpp"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <fstream>
#include <utility>
#include <vector>

#include "net/server.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/errors.hpp"
#include "service/service.hpp"
#include "util/confine.hpp"

namespace treesched::net {

namespace {

/// Resolves a client-supplied `trace dump=` path against the configured
/// trace directory. The client names a file the SERVER will write, so
/// the path may only be a plain relative name inside trace_dir —
/// otherwise any network client could create or truncate any file the
/// server user can write. Shared with the `file:` tree-spec confinement
/// (Server::intern_spec) via util/confine.
bool resolve_trace_path(const std::string& trace_dir, std::string_view path,
                        std::string& resolved) {
  return confine_relative_path(trace_dir, path, resolved);
}

}  // namespace

Connection::Connection(Server& server, int fd, std::uint64_t id)
    : server_(server),
      fd_(fd),
      id_(id),
      framer_(server.config().max_line),
      reader_(server.config().max_frame) {
  // The accept moment doubles as the first burst stamp, so a request
  // that somehow precedes the first readable event still has one.
  burst_ns_ = obs::now_ns();
  interest_ = EPOLLIN;
  server_.loop().add(fd_, interest_,
                     [this](std::uint32_t events) { handle_events(events); });
}

Connection::~Connection() {
  // A vanished client's queued work must not occupy a worker: cancel
  // whatever is still cancellable. Tickets a worker already picked up
  // run to completion; their settlements post to the loop, find this
  // connection gone, and are dropped (the server's outstanding-ticket
  // count is kept by Server::ticket_settled either way).
  for (Pending& p : pending_) {
    if (!p.result.has_value() && p.ticket.valid()) (void)p.ticket.cancel();
  }
  server_.loop().remove(fd_);
  ::close(fd_);
}

void Connection::handle_events(std::uint32_t events) {
  if (events & EPOLLERR) {
    abort_connection();
    return;
  }
  if (events & EPOLLOUT) {
    send_buffered();
    if (closing_) return;
  }
  if (events & EPOLLIN) {
    on_readable();
    if (closing_) return;
  } else if (events & EPOLLHUP) {
    // Peer fully closed and nothing left to read: any buffered answers
    // are undeliverable.
    abort_connection();
    return;
  }
  update_interest();
  finish_if_drained();
}

void Connection::on_readable() {
  // One clock read per readable event stamps accept/parse for every
  // request framed out of this burst — a 16-deep batch frame costs one
  // now_ns(), not sixteen, which keeps the stage timing inside the
  // fast path's overhead budget.
  burst_ns_ = obs::now_ns();
  while (!read_closed_ && !closing_) {
    if (mode_ == Mode::kBinary) {
      // Zero-copy read path: straight into the FrameReader's buffer —
      // request payloads are parsed in place, never copied into an
      // intermediate line buffer.
      char* dst = reader_.write_ptr();
      const ssize_t n = ::read(fd_, dst, reader_.write_capacity());
      if (n > 0) {
        reader_.commit(static_cast<std::size_t>(n));
        drain_frames();
        if (closing_) return;
        if (wbuf_.size() - wbuf_head_ > server_.config().max_wbuf) break;
        continue;
      }
      if (n == 0) {
        read_closed_ = true;
        if (reader_.buffered() > 0) {
          // Half-close truncating a frame: the tail can never complete.
          ++server_.counters().frames_bad;
          emit_error(std::nullopt, ErrorCode::kBadRequest,
                     "connection half-closed mid-frame (" +
                         std::to_string(reader_.buffered()) +
                         " unframed bytes)");
        }
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      abort_connection();  // ECONNRESET and friends
      return;
    }

    std::array<char, 16384> buf;
    const ssize_t n = ::read(fd_, buf.data(), buf.size());
    if (n > 0) {
      handle_bytes(buf.data(), static_cast<std::size_t>(n));
      if (closing_) return;
      // Backpressure: a client that outpaces its own reading stops
      // being read until it drains us below the low watermark.
      if (wbuf_.size() - wbuf_head_ > server_.config().max_wbuf) break;
      continue;
    }
    if (n == 0) {
      // Orderly EOF (half-close): the client said "no more requests,
      // now answer me". A final unterminated line still counts — the
      // same grace std::getline gives the stdin front-end.
      read_closed_ = true;
      if (mode_ == Mode::kDetect && !prelude_.empty()) {
        // The client greeted with 0xB3 (anything else resolves to text
        // immediately) but hung up before completing the magic.
        mode_ = Mode::kBinary;
        ++server_.counters().frames_bad;
        emit_error(std::nullopt, ErrorCode::kBadRequest,
                   "connection closed inside the protocol magic");
      } else if (mode_ != Mode::kBinary) {
        if (const auto last = framer_.finish()) handle_line(*last);
      }
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    abort_connection();
    return;
  }
  flush_ready();
  send_buffered();
}

void Connection::handle_bytes(const char* data, std::size_t len) {
  if (mode_ == Mode::kText) {
    feed_text(data, len);
    return;
  }
  // kDetect: buffer until the first byte (and, for 0xB3, the full
  // 4-byte magic) resolves the protocol.
  prelude_.append(data, len);
  if (prelude_.front() != kFrameMagic.front()) {
    // 0xB3 is not printable ASCII, so no v2 text line starts with it:
    // this connection is text. Replay the prelude through the framer.
    mode_ = Mode::kText;
    note_detected();
    const std::string prelude = std::move(prelude_);
    prelude_ = {};
    feed_text(prelude.data(), prelude.size());
    return;
  }
  if (prelude_.size() < kFrameMagic.size()) return;  // magic still partial
  if (std::string_view(prelude_).substr(0, kFrameMagic.size()) !=
      kFrameMagic) {
    mode_ = Mode::kBinary;  // they spoke 0xB3: answer in kind, then close
    ++server_.counters().frames_bad;
    protocol_violation("bad protocol magic");
    return;
  }
  mode_ = Mode::kBinary;
  ++server_.counters().v3_conns;
  note_detected();
  if (prelude_.size() > kFrameMagic.size()) {
    reader_.feed(prelude_.data() + kFrameMagic.size(),
                 prelude_.size() - kFrameMagic.size());
  }
  prelude_ = {};
  drain_frames();
}

void Connection::note_detected() {
  // One span per connection marking protocol negotiation (burst start
  // to resolution) — the first hop of a cross-tier trace timeline.
  obs::Tracer& tracer = obs::Tracer::global();
  if (!tracer.enabled()) return;
  tracer.record("net/detect", burst_ns_, obs::now_ns() - burst_ns_, id_);
}

void Connection::feed_text(const char* data, std::size_t len) {
  for (const LineFramer::Line& line : framer_.feed(data, len)) {
    handle_line(line);
    if (closing_ || read_closed_) return;
  }
}

void Connection::handle_line(const LineFramer::Line& line) {
  ++server_.counters().lines;
  if (line.overflow) {
    push_settled_error(std::nullopt, ErrorCode::kBadRequest,
                       "request line of " + std::to_string(line.wire_bytes) +
                           " bytes exceeds the " +
                           std::to_string(framer_.max_line()) +
                           "-byte limit");
    return;
  }
  std::string text = line.text;
  const auto hash_pos = text.find('#');
  if (hash_pos != std::string::npos) text.resize(hash_pos);
  if (text.find_first_not_of(" \t\r") == std::string::npos) return;

  RequestLine parsed;
  try {
    parsed = parse_request_line(text);
  } catch (const std::exception& e) {
    // Untagged: a positional client correlates responses by line, so
    // the error must keep its place in the stream.
    ++server_.counters().parse_errors;
    push_settled_error(std::nullopt, ErrorCode::kBadRequest, e.what());
    return;
  }
  dispatch_request(as_view(parsed), TraceContext{});
  flush_ready();
}

void Connection::drain_frames() {
  Frame frame;
  while (!closing_ && !read_closed_) {
    const FrameReader::Status status = reader_.next(frame);
    if (status == FrameReader::Status::kNeedMore) return;
    if (status == FrameReader::Status::kBad) {
      ++server_.counters().frames_bad;
      protocol_violation(reader_.bad_reason());
      return;
    }
    ++server_.counters().frames_in;
    handle_frame(frame);
  }
}

void Connection::handle_frame(const Frame& frame) {
  switch (frame.opcode) {
    case Opcode::kRequest: {
      TraceContext ctx;
      std::string_view rest;
      std::string error;
      if (!split_trace_context(frame, ctx, rest, error)) {
        ++server_.counters().frames_bad;
        protocol_violation(std::move(error));
        return;
      }
      handle_request_payload(rest, ctx);
      return;
    }
    case Opcode::kBatch: {
      // The trace extension leads the batch payload (before the entry
      // count); every entry of the batch shares the frame's context.
      TraceContext ctx;
      std::string_view rest;
      std::string error;
      if (!split_trace_context(frame, ctx, rest, error)) {
        ++server_.counters().frames_bad;
        protocol_violation(std::move(error));
        return;
      }
      std::vector<std::string_view> entries;
      if (!decode_batch(rest, entries, error)) {
        ++server_.counters().frames_bad;
        protocol_violation(std::move(error));
        return;
      }
      server_.counters().batch_requests += entries.size();
      // One frame, many pipelined requests: every answer lands in
      // wbuf_ and the whole batch flushes in a coalesced write.
      for (const std::string_view entry : entries) {
        handle_request_payload(entry, ctx);
        if (closing_ || read_closed_) return;
      }
      return;
    }
    case Opcode::kCancel: {
      std::uint64_t cancel_id = 0;
      if (!decode_cancel(frame, cancel_id)) {
        ++server_.counters().frames_bad;
        protocol_violation("cancel frame payload is not one u64 id");
        return;
      }
      handle_cancel(cancel_id);
      return;
    }
    case Opcode::kPing:
    case Opcode::kStats: {
      std::optional<std::uint64_t> id;
      if (!decode_control_id(frame, id)) {
        ++server_.counters().frames_bad;
        protocol_violation("control frame payload contradicts its flags");
        return;
      }
      if (frame.opcode == Opcode::kPing) {
        handle_ping(id);
      } else {
        handle_stats(id);
      }
      return;
    }
    default:
      ++server_.counters().frames_bad;
      protocol_violation("unknown opcode " +
                         std::to_string(static_cast<int>(frame.opcode)));
      return;
  }
}

void Connection::handle_request_payload(std::string_view payload,
                                        const TraceContext& ctx) {
  ++server_.counters().lines;
  RequestView req;
  std::string error;
  bool parsed;
  {
    // The parse span carries the propagated trace id, so a cross-tier
    // timeline shows where the backend spent its grammar time.
    obs::ScopedSpan span(obs::Tracer::global(), "net/parse", ctx.trace_id);
    parsed = parse_request_view(payload, req, error);
  }
  if (!parsed) {
    // A grammar error is the client's problem, not a protocol
    // violation: answer bad_request in stream order and keep going,
    // exactly like a bad text line.
    ++server_.counters().parse_errors;
    push_settled_error(std::nullopt, ErrorCode::kBadRequest,
                       std::move(error));
    return;
  }
  dispatch_request(req, ctx);
}

void Connection::dispatch_request(const RequestView& req,
                                  const TraceContext& ctx) {
  switch (req.kind) {
    case RequestLine::Kind::kCancel:
      handle_cancel(*req.id);
      break;
    case RequestLine::Kind::kPing:
      handle_ping(req.id);
      break;
    case RequestLine::Kind::kStats:
      handle_stats(req.id);
      break;
    case RequestLine::Kind::kTrace:
      handle_trace(req);
      break;
    case RequestLine::Kind::kSchedule:
      handle_schedule(req, ctx);
      break;
  }
}

void Connection::handle_schedule(const RequestView& req,
                                 const TraceContext& ctx) {
  if (req.id && has_pending_tag(*req.id)) {
    push_settled_error(std::nullopt, ErrorCode::kBadRequest,
                       "duplicate id=" + std::to_string(*req.id) +
                           " (a request with this tag is still pending)");
    return;
  }
  if (inflight_ >= server_.config().max_pending) {
    // The per-connection admission bound: typed, immediate, and cheap —
    // the service never sees the request.
    const std::string msg =
        "connection window full (" +
        std::to_string(server_.config().max_pending) +
        " requests in flight); read some answers first";
    obs::EventLog::global().emit(
        "queue_full", ctx.trace_id,
        {obs::EventLog::Field::u64("conn", id_),
         obs::EventLog::Field::u64("window",
                                   server_.config().max_pending)});
    if (req.id) {
      emit_error(req.id, ErrorCode::kQueueFull, msg);
    } else {
      push_settled_error(std::nullopt, ErrorCode::kQueueFull, msg);
    }
    return;
  }

  Pending pending;
  pending.key = next_key_++;
  pending.id = req.id;
  pending.trace_id = ctx.trace_id;
  // The single owned copy of the request's strings: everything upstream
  // of this point was views into the read buffer.
  pending.algo = std::string(req.algo);
  pending.p = req.p;
  pending.priority = req.priority;
  Result<TreeHandle, ServiceError> handle = server_.intern_spec(req.tree_spec);
  if (!handle.ok()) {
    // Answer in place for tagged requests, in order for untagged ones.
    const ServiceError& err = handle.error();
    if (req.id) {
      emit_error(req.id, err.code, err.message);
    } else {
      push_settled_error(req.id, err.code, err.message);
    }
    return;
  }
  ScheduleRequest sreq;
  sreq.stamps.stamp(obs::Stage::kAccept, burst_ns_);
  // Parse is stamped at burst granularity too: sub-burst parse time is
  // noise at the histograms' microsecond resolution, and sharing the
  // stamp keeps the hot path at one clock read per read burst.
  sreq.stamps.stamp(obs::Stage::kParse, burst_ns_);
  sreq.tree = handle.value();
  pending.tree_hash = sreq.tree.hash;
  pending.n = sreq.tree->size();
  sreq.algo = pending.algo;
  sreq.p = req.p;
  sreq.memory_cap = req.memory_cap;
  sreq.priority = req.priority;
  sreq.deadline_ms = req.deadline_ms;

  // Cache-hit fast path, right here on the I/O thread: a hit settles
  // the window entry immediately — no ticket, no queue, no pool job, no
  // eventfd round trip — and flushes with the read burst, so a cache-hot
  // batch frame answers in one coalesced write. Ordering is preserved
  // because the answer still rides the pending window.
  if (auto hit = server_.service().try_cached(sreq)) {
    pending.result = ServiceResult(std::move(*hit));
    pending_.push_back(std::move(pending));
    return;
  }

  server_.note_submitted();
  Ticket ticket = server_.service().submit(std::move(sreq));
  const std::uint64_t key = pending.key;
  pending.ticket = std::move(ticket);
  ++inflight_;
  Ticket& stored = pending_.emplace_back(std::move(pending)).ticket;
  // Attached after the entry is in the window: an already-settled
  // ticket (service-level queue_full) fires inline, posts, and the
  // posted deliver() finds its entry.
  stored.on_complete(
      [srv = &server_, cid = id_, key](const ServiceResult& result) {
        srv->ticket_settled(cid, key, result);
      });
}

void Connection::handle_cancel(std::uint64_t cancel_id) {
  Pending* target = nullptr;
  for (Pending& p : pending_) {
    if (p.id && *p.id == cancel_id) {
      target = &p;
      break;
    }
  }
  if (!target) {
    // Untagged ack (a late cancel racing the answer must not put a
    // second id=N response on the wire), held in stream order.
    push_settled_error(std::nullopt, ErrorCode::kBadRequest,
                       "cancel id=" + std::to_string(cancel_id) +
                           ": no pending request with this id");
    return;
  }
  if (!target->ticket.valid() || target->result.has_value() ||
      !target->ticket.cancel()) {
    push_settled_error(std::nullopt, ErrorCode::kBadRequest,
                       "cancel id=" + std::to_string(cancel_id) +
                           ": request already running or answered");
  }
  // On success the ticket settled with code=cancelled; its completion
  // is already posted to the loop and deliver() emits the answer.
}

void Connection::handle_ping(std::optional<std::uint64_t> id) {
  // Health checks bypass the pending window: a server drowning in Bulk
  // work still answers its load balancer immediately.
  ResponseLine line;
  line.kind = ResponseLine::Kind::kPong;
  line.ok = true;
  line.id = id;
  send_response(line);
}

void Connection::handle_stats(std::optional<std::uint64_t> id) {
  const ServerCounters& sc = server_.counters();
  ResponseLine line;
  line.kind = ResponseLine::Kind::kStats;
  line.ok = true;
  line.id = id;
  // Transport-specific counters first, then the shared service
  // vocabulary (service_stats_pairs keeps both front-ends aligned).
  line.stats = {
      {"conns", server_.conns_.size()},
      {"accepted", sc.accepted},
      {"rejected_conns", sc.rejected_conns},
      {"lines", sc.lines},
      {"submitted", sc.submitted},
      {"outstanding", server_.outstanding_},
      {"v3_conns", sc.v3_conns},
      {"frames_in", sc.frames_in},
      {"frames_bad", sc.frames_bad},
      {"batch_requests", sc.batch_requests},
      {"parse_errors", sc.parse_errors},
  };
  for (auto& pair : service_stats_pairs(server_.service())) {
    line.stats.push_back(std::move(pair));
  }
  send_response(line);
}

void Connection::handle_trace(const RequestView& req) {
  // Like ping/stats, trace answers immediately, out of band of the
  // pending window. The tracer is process-wide: every connection (and
  // the stdin front-end) drives the same one, which is the point — one
  // client can turn tracing on, load can come from anywhere, and a dump
  // sees it all.
  obs::Tracer& tracer = obs::Tracer::global();
  std::uint64_t written = 0;
  bool dumped = false;
  if (req.trace_action == "start") {
    tracer.enable();
  } else if (req.trace_action == "stop") {
    tracer.disable();
  } else if (req.trace_action == "pull") {
    // The spans themselves, encoded as stats pairs — the primitive the
    // cluster router's merged cross-tier dump is built on. Bounded
    // (kTracePullMaxSpans, latest kept) so the reply frame always fits
    // the default frame budget.
    ResponseLine line;
    line.kind = ResponseLine::Kind::kTrace;
    line.ok = true;
    line.id = req.id;
    obs::encode_span_pairs(tracer.snapshot(), obs::kTracePullMaxSpans,
                           line.stats);
    send_response(line);
    return;
  } else if (req.trace_action == "dump") {
    // Dumps write a server-side file, so they are off unless the
    // operator opted in with a trace directory, and the client's path
    // is confined to it (see resolve_trace_path).
    const std::string& trace_dir = server_.config().trace_dir;
    if (trace_dir.empty()) {
      emit_error(req.id, ErrorCode::kBadRequest,
                 "trace dump is disabled on this server "
                 "(start it with --trace-dir to allow dumps)");
      return;
    }
    std::string resolved;
    if (!resolve_trace_path(trace_dir, req.trace_path, resolved)) {
      emit_error(req.id, ErrorCode::kBadRequest,
                 "trace dump path must be a relative name inside the "
                 "server's trace directory (no absolute paths, no \"..\")");
      return;
    }
    // The write runs synchronously on the I/O thread and stalls every
    // connection (and the metrics endpoint) for its duration. Accepted
    // deliberately: the dump is bounded (4096 spans per thread ring),
    // and it only happens when the operator configured a trace
    // directory and asked for a dump — a diagnostic moment, not a
    // serving-path operation.
    std::ofstream out{resolved};
    if (!out) {
      emit_error(req.id, ErrorCode::kBadRequest,
                 "cannot open trace path \"" + resolved + "\" for writing");
      return;
    }
    written = tracer.write_chrome_trace(out);
    if (!out) {
      emit_error(req.id, ErrorCode::kBadRequest,
                 "short write dumping trace to \"" + resolved + "\"");
      return;
    }
    dumped = true;
  }  // "status" mutates nothing
  ResponseLine line;
  line.kind = ResponseLine::Kind::kTrace;
  line.ok = true;
  line.id = req.id;
  line.stats = {
      {"enabled", tracer.enabled() ? 1 : 0},
      {"spans", tracer.recorded()},
      {"dropped", tracer.dropped()},
  };
  if (req.trace_action == "status") {
    // Per-recording-thread overwrite counts: a truncated dump can name
    // the thread that lost spans instead of one opaque total.
    for (const auto& [tid, drops] : tracer.dropped_by_ring()) {
      line.stats.emplace_back("ring" + std::to_string(tid) + "_dropped",
                              drops);
    }
  }
  if (dumped) line.stats.emplace_back("written", written);
  send_response(line);
}

void Connection::deliver(std::uint64_t key, const ServiceResult& result) {
  for (Pending& p : pending_) {
    if (p.key != key) continue;
    if (!p.result.has_value()) {
      p.result = result;
      --inflight_;
    }
    break;
  }
  flush_ready();
  send_buffered();
  update_interest();
  finish_if_drained();
}

void Connection::flush_ready() {
  emit_now_ns_ = 0;  // one lazy clock read serves the whole emit burst
  // The settled in-order prefix answers first…
  while (!pending_.empty() && pending_.front().result.has_value()) {
    emit(pending_.front(), *pending_.front().result);
    pending_.pop_front();
  }
  // …then any settled id=-tagged entry anywhere in the window (the tag
  // makes an out-of-order answer attributable).
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->id && it->result.has_value()) {
      emit(*it, *it->result);
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

void Connection::emit(const Pending& pending, const ServiceResult& result) {
  ResponseLine line;
  line.id = pending.id;
  if (result.ok()) {
    const ScheduleResponse& resp = result.value();
    line.ok = true;
    line.tree_hash = pending.tree_hash;
    line.n = pending.n;
    line.algo = pending.algo;
    line.p = pending.p;
    line.makespan = resp.makespan;
    line.peak_memory = resp.peak_memory;
    line.cache_hit = resp.cache_hit;
    line.priority = pending.priority;
  } else {
    line.ok = false;
    line.code = result.error().code;
    line.message = result.error().message;
  }
  send_response(line);
  server_.note_response(static_cast<int>(pending.priority), result.ok());
  if (!result.ok() || !result.value().stamps.has(obs::Stage::kAccept)) {
    // Errors and requests born before stamping (in-process callers'
    // cached entries) carry no stamps worth a histogram.
    return;
  }
  if (emit_now_ns_ == 0) emit_now_ns_ = obs::now_ns();
  FlushMark mark;
  mark.timing.stamps = result.value().stamps;
  mark.timing.stamps.stamp(obs::Stage::kSerialize, emit_now_ns_);
  mark.timing.priority = pending.priority;
  mark.timing.id = pending.id;
  mark.timing.algo = pending.algo;
  mark.timing.cache_hit = result.value().cache_hit;
  mark.timing.trace_id = pending.trace_id;
  // The response is flushed once this many bytes have left the process.
  mark.target = cum_sent_ + (wbuf_.size() - wbuf_head_);
  flush_q_.push_back(std::move(mark));
}

void Connection::emit_error(std::optional<std::uint64_t> id, ErrorCode code,
                            const std::string& message) {
  ResponseLine line;
  line.ok = false;
  line.id = id;
  line.code = code;
  line.message = message;
  send_response(line);
  server_.note_response(kPriorityClasses, false);
}

void Connection::push_settled_error(std::optional<std::uint64_t> id,
                                    ErrorCode code, std::string message) {
  Pending pending;
  pending.key = next_key_++;
  pending.id = id;
  pending.result =
      ServiceResult(ServiceError{code, std::move(message), nullptr});
  pending_.push_back(std::move(pending));
}

void Connection::protocol_violation(std::string message) {
  // Unlike a bad text line (where the next newline resynchronizes),
  // framing is unrecoverable after a bad frame: answer once, stop
  // reading, let the settled window flush, then close. The hostile
  // bytes past the violation are never examined.
  emit_error(std::nullopt, ErrorCode::kBadRequest, message);
  read_closed_ = true;
}

bool Connection::has_pending_tag(std::uint64_t tag) const {
  for (const Pending& p : pending_) {
    if (p.id && *p.id == tag) return true;
  }
  return false;
}

void Connection::send_response(const ResponseLine& line) {
  if (mode_ == Mode::kBinary) {
    FrameWriter writer(wbuf_);
    writer.response(line);
  } else {
    wbuf_ += format_response_line(line);
    wbuf_.push_back('\n');
  }
}

void Connection::send_buffered() {
  while (wbuf_head_ < wbuf_.size()) {
    const ssize_t n =
        ::send(fd_, wbuf_.data() + wbuf_head_, wbuf_.size() - wbuf_head_,
               MSG_NOSIGNAL);
    if (n > 0) {
      wbuf_head_ += static_cast<std::size_t>(n);
      cum_sent_ += static_cast<std::uint64_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // EPIPE/ECONNRESET: the client is gone; buffered answers are
    // undeliverable and queued work is cancelled.
    abort_connection();
    return;
  }
  if (wbuf_head_ == wbuf_.size()) {
    wbuf_.clear();
    wbuf_head_ = 0;
  } else if (wbuf_head_ > 65536 && wbuf_head_ * 2 > wbuf_.size()) {
    wbuf_.erase(0, wbuf_head_);
    wbuf_head_ = 0;
  }
  // Every response whose last byte just reached the kernel is flushed:
  // stamp once (the whole drained batch shares one clock read) and hand
  // the stage record to the server's histograms and slow log.
  if (!flush_q_.empty() && cum_sent_ >= flush_q_.front().target) {
    const std::uint64_t now = obs::now_ns();
    do {
      FlushMark& mark = flush_q_.front();
      mark.timing.stamps.stamp(obs::Stage::kFlush, now);
      server_.record_flushed(mark.timing);
      flush_q_.pop_front();
    } while (!flush_q_.empty() && cum_sent_ >= flush_q_.front().target);
  }
}

void Connection::update_interest() {
  if (closing_) return;
  // Hysteresis: stop reading past the high watermark, resume only once
  // the client has drained us below half — no flapping per send cycle.
  const std::size_t buffered = wbuf_.size() - wbuf_head_;
  if (buffered > server_.config().max_wbuf) {
    paused_reads_ = true;
  } else if (buffered <= server_.config().max_wbuf / 2) {
    paused_reads_ = false;
  }
  std::uint32_t want = 0;
  if (!read_closed_ && !paused_reads_) want |= EPOLLIN;
  if (wbuf_head_ < wbuf_.size()) want |= EPOLLOUT;
  if (want != interest_) {
    server_.loop().modify(fd_, want);
    interest_ = want;
  }
}

void Connection::begin_drain() {
  // Stop reading — requests already framed keep their answers, new
  // bytes are ignored — and close once the window answers and flushes.
  read_closed_ = true;
  flush_ready();
  send_buffered();
  update_interest();
  finish_if_drained();
}

void Connection::abort_connection() {
  if (closing_) return;
  closing_ = true;
  server_.defer_close(id_);
}

void Connection::finish_if_drained() {
  if (closing_ || !read_closed_) return;
  if (pending_.empty() && wbuf_head_ == wbuf_.size()) {
    closing_ = true;
    server_.defer_close(id_);
  }
}

}  // namespace treesched::net

#include "net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <utility>

namespace treesched::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    throw_errno("eventfd");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    ::close(wake_fd_);
    ::close(epoll_fd_);
    throw_errno("epoll_ctl(wake_fd)");
  }
}

EventLoop::~EventLoop() {
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

void EventLoop::add(int fd, std::uint32_t events, FdHandler handler) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    throw_errno("epoll_ctl(ADD)");
  }
  handlers_[fd] = std::make_shared<FdHandler>(std::move(handler));
}

void EventLoop::modify(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
    throw_errno("epoll_ctl(MOD)");
  }
}

void EventLoop::remove(int fd) {
  // The fd may already be gone from the kernel set (peer closed); only
  // the bookkeeping removal matters for correctness.
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

void EventLoop::post(std::function<void()> fn) {
  {
    const std::lock_guard<std::mutex> lock(post_mutex_);
    posted_.push_back(std::move(fn));
  }
  const std::uint64_t one = 1;
  // A full eventfd counter (never in practice: it saturates at 2^64-2)
  // still leaves a pending EPOLLIN, so the wakeup is not lost.
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::defer(std::function<void()> fn) {
  deferred_.push_back(std::move(fn));
}

void EventLoop::run_deferred() {
  // A deferred function may defer again (e.g. a send that filled the
  // kernel buffer and wants another try after the next batch it joins);
  // loop until the queue is quiet so nothing leaks into the epoll wait.
  while (!deferred_.empty()) {
    std::vector<std::function<void()>> batch;
    batch.swap(deferred_);
    for (std::function<void()>& fn : batch) fn();
  }
}

void EventLoop::drain_wakeup() {
  std::uint64_t count = 0;
  while (::read(wake_fd_, &count, sizeof(count)) > 0) {
  }
}

void EventLoop::stop() {
  post([this] { stop_ = true; });
}

void EventLoop::run() {
  std::array<epoll_event, 64> events{};
  while (!stop_) {
    const int n =
        ::epoll_wait(epoll_fd_, events.data(),
                     static_cast<int>(events.size()), /*timeout=*/-1);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("epoll_wait");
    }
    bool woken = false;
    for (int i = 0; i < n; ++i) {
      const int fd = events[static_cast<std::size_t>(i)].data.fd;
      if (fd == wake_fd_) {
        woken = true;
        continue;
      }
      // Looked up per event: a handler earlier in this batch may have
      // removed this fd (e.g. closed the connection it belongs to).
      const auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;
      const std::shared_ptr<FdHandler> handler = it->second;
      (*handler)(events[static_cast<std::size_t>(i)].events);
    }
    if (woken) drain_wakeup();
    // Posted functions run after fd events, in post order. Swap under
    // the lock so a posted function may post again (the next batch).
    std::vector<std::function<void()>> batch;
    {
      const std::lock_guard<std::mutex> lock(post_mutex_);
      batch.swap(posted_);
    }
    for (std::function<void()>& fn : batch) fn();
    run_deferred();
  }
  // stop() ran as a posted function, so every function posted before it
  // has already run; drain stragglers posted after (completions racing
  // the drain decision) until the queue is empty — a drained function
  // may itself post — so nothing is ever dropped.
  for (;;) {
    std::vector<std::function<void()>> batch;
    {
      const std::lock_guard<std::mutex> lock(post_mutex_);
      batch.swap(posted_);
    }
    if (batch.empty()) break;
    for (std::function<void()>& fn : batch) fn();
    run_deferred();
  }
  stop_ = false;  // run() may be called again
}

}  // namespace treesched::net

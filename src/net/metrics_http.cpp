#include "net/metrics_http.hpp"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "obs/prometheus.hpp"

namespace treesched::net {

namespace {

/// Splits the request line "<METHOD> <target> <version>"; false when the
/// bytes are not even that much HTTP.
bool parse_request_line(std::string_view line, std::string_view& method,
                        std::string_view& target) {
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return false;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return false;
  method = line.substr(0, sp1);
  target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  return !method.empty() && !target.empty();
}

}  // namespace

MetricsHttp::MetricsHttp(EventLoop& loop, obs::MetricsRegistry& registry,
                         ListenerConfig config)
    : loop_(loop), registry_(registry), listener_(config) {}

MetricsHttp::~MetricsHttp() { stop(); }

void MetricsHttp::start() {
  if (active_) return;
  loop_.add(listener_.fd(), EPOLLIN, [this](std::uint32_t) { accept_ready(); });
  active_ = true;
}

void MetricsHttp::stop() {
  if (!active_) return;
  loop_.remove(listener_.fd());
  active_ = false;
  for (auto& [id, conn] : conns_) {
    loop_.remove(conn->fd);
    ::close(conn->fd);
  }
  conns_.clear();
}

void MetricsHttp::accept_ready() {
  listener_.accept_ready([this](int fd) {
    const std::uint64_t id = next_id_++;
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->interest = EPOLLIN;
    loop_.add(fd, EPOLLIN,
              [this, id](std::uint32_t events) { conn_events(id, events); });
    conns_.emplace(id, std::move(conn));
  });
}

void MetricsHttp::conn_events(std::uint64_t id, std::uint32_t events) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& conn = *it->second;
  if (events & (EPOLLERR | EPOLLHUP)) {
    close_conn(id);
    return;
  }
  if ((events & EPOLLIN) && !conn.responded) {
    char buf[4096];
    bool eof = false;
    while (true) {
      // Hard cap regardless of head completeness: past kMaxHead there
      // is enough buffered to judge the request (or 400 it), so a
      // client streaming a body can never grow rbuf without bound.
      if (conn.rbuf.size() > kMaxHead) break;
      const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
      if (n > 0) {
        conn.rbuf.append(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) {
        eof = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close_conn(id);
      return;
    }
    respond(conn);
    if (!conn.responded && eof) {
      // EOF before a complete head: nothing to answer.
      close_conn(id);
      return;
    }
  }
  send_buffered(id, conn);
}

void MetricsHttp::respond(Conn& conn) {
  const std::size_t head_end = conn.rbuf.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    if (conn.rbuf.size() > kMaxHead) {
      queue_response(conn, 400, "Bad Request", "text/plain",
                     "request head too large\n");
    }
    return;  // head still incomplete
  }
  const std::string_view head(conn.rbuf.data(), head_end);
  const std::string_view line = head.substr(0, head.find("\r\n"));
  std::string_view method;
  std::string_view target;
  if (!parse_request_line(line, method, target)) {
    queue_response(conn, 400, "Bad Request", "text/plain",
                   "malformed request line\n");
    return;
  }
  // Ignore any query string: `/metrics?foo=bar` is still the scrape.
  const std::size_t query = target.find('?');
  if (query != std::string_view::npos) target = target.substr(0, query);
  if (method != "GET") {
    queue_response(conn, 405, "Method Not Allowed", "text/plain",
                   "only GET is served here\n");
    return;
  }
  if (target != "/metrics") {
    queue_response(conn, 404, "Not Found", "text/plain",
                   "try /metrics\n");
    return;
  }
  queue_response(conn, 200, "OK",
                 "text/plain; version=0.0.4; charset=utf-8",
                 obs::render_prometheus(registry_.snapshot()));
}

void MetricsHttp::queue_response(Conn& conn, int status, const char* reason,
                                 const char* content_type, std::string body) {
  conn.responded = true;
  std::string head;
  head.append("HTTP/1.1 ")
      .append(std::to_string(status))
      .append(" ")
      .append(reason)
      .append("\r\nContent-Type: ")
      .append(content_type)
      .append("\r\nContent-Length: ")
      .append(std::to_string(body.size()))
      .append("\r\nConnection: close\r\n\r\n");
  conn.wbuf = std::move(head);
  conn.wbuf += body;
}

void MetricsHttp::send_buffered(std::uint64_t id, Conn& conn) {
  while (conn.whead < conn.wbuf.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.wbuf.data() + conn.whead,
               conn.wbuf.size() - conn.whead, MSG_NOSIGNAL);
    if (n > 0) {
      conn.whead += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    close_conn(id);
    return;
  }
  if (conn.responded && conn.whead == conn.wbuf.size()) {
    close_conn(id);
    return;
  }
  // Once the response is queued the request is over: reading stops (a
  // client streaming a body can fill its socket buffer, never ours) and
  // only the flush keeps the connection registered.
  std::uint32_t want = conn.responded ? 0u : static_cast<std::uint32_t>(EPOLLIN);
  if (conn.whead < conn.wbuf.size()) want |= EPOLLOUT;
  if (want != conn.interest) {
    loop_.modify(conn.fd, want);
    conn.interest = want;
  }
}

void MetricsHttp::close_conn(std::uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  loop_.remove(it->second->fd);
  ::close(it->second->fd);
  conns_.erase(it);
}

}  // namespace treesched::net

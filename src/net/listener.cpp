#include "net/listener.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>
#include <system_error>

namespace treesched::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

[[noreturn]] void close_and_throw(int fd, const char* what) {
  const int saved = errno;
  ::close(fd);
  errno = saved;
  throw_errno(what);
}

}  // namespace

Listener::Listener(const ListenerConfig& config)
    : unix_path_(config.unix_path) {
  if (is_unix()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (unix_path_.size() >= sizeof(addr.sun_path)) {
      throw std::invalid_argument("unix socket path longer than " +
                                  std::to_string(sizeof(addr.sun_path) - 1) +
                                  " bytes: " + unix_path_);
    }
    fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) throw_errno("socket(AF_UNIX)");
    // A stale socket file from a crashed previous run would make bind
    // fail with EADDRINUSE forever; remove it (a live listener would
    // have been detectable only by connecting — restarting over it is
    // the accepted unix-socket convention).
    (void)::unlink(unix_path_.c_str());
    unix_path_.copy(addr.sun_path, unix_path_.size());
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      close_and_throw(fd_, "bind(unix)");
    }
    if (::listen(fd_, SOMAXCONN) < 0) close_and_throw(fd_, "listen");
    set_nonblocking(fd_);
    address_ = "unix:" + unix_path_;
    return;
  }

  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw_errno("socket");
  const int one = 1;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  if (::inet_pton(AF_INET, config.bind.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw std::invalid_argument("not an IPv4 bind address: " + config.bind);
  }
  addr.sin_port = htons(config.port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    close_and_throw(fd_, "bind");
  }
  if (::listen(fd_, SOMAXCONN) < 0) close_and_throw(fd_, "listen");
  set_nonblocking(fd_);
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    close_and_throw(fd_, "getsockname");
  }
  port_ = ntohs(bound.sin_port);
  address_ = config.bind + ":" + std::to_string(port_);
}

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
  if (is_unix()) (void)::unlink(unix_path_.c_str());
}

void Listener::accept_ready(const std::function<void(int fd)>& sink) {
  for (;;) {
    const int conn = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (conn < 0) {
      // EAGAIN: drained. ECONNABORTED/EINTR: transient, keep going.
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == ECONNABORTED || errno == EINTR) continue;
      throw_errno("accept4");
    }
    set_nonblocking(conn);
    if (!is_unix()) {
      const int one = 1;
      // Response lines are small and latency-bound: never Nagle them.
      (void)::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    sink(conn);
  }
}

}  // namespace treesched::net

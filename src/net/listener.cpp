#include "net/listener.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <system_error>

namespace treesched::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

}  // namespace

Listener::Listener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw_errno("socket");
  const int one = 1;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("bind");
  }
  if (::listen(fd_, SOMAXCONN) < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("listen");
  }
  set_nonblocking(fd_);
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
}

void Listener::accept_ready(const std::function<void(int fd)>& sink) {
  for (;;) {
    const int conn = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (conn < 0) {
      // EAGAIN: drained. ECONNABORTED/EINTR: transient, keep going.
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == ECONNABORTED || errno == EINTR) continue;
      throw_errno("accept4");
    }
    set_nonblocking(conn);
    const int one = 1;
    // Response lines are small and latency-bound: never Nagle them.
    (void)::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sink(conn);
  }
}

}  // namespace treesched::net

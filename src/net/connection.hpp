#pragma once
// One client connection of the scheduling server (src/net/): owns the
// socket, the protocol state (negotiated text v2 or binary v3), the
// bounded write buffer, and the window of in-flight requests. All
// methods run on the server's I/O (event-loop) thread; completions
// computed on pool workers re-enter through Server::ticket_settled ->
// EventLoop::post -> deliver().
//
// Protocol negotiation: the connection starts in kDetect and buffers a
// prelude of at most 4 bytes. A first byte of 0xB3 commits the client
// to the v3 magic (net/frame.hpp) — the full match switches to kBinary,
// a mismatch answers one binary bad_request frame and closes. Any other
// first byte is text v2: the prelude replays through the LineFramer and
// `nc` clients never notice v3 exists.
//
// Both protocols share ONE dispatch path: text lines parse through
// parse_request_line and binary payloads through the zero-copy
// parse_request_view (service/request_view.hpp); each funnels into
// dispatch_request(RequestView) and the same pending-window semantics —
// untagged requests answer in submission order, id=-tagged ones stream
// out the moment they settle, `cancel` hits still-queued requests, and
// ping/stats answer immediately, out of band of the window. Responses
// are emitted in the connection's own protocol by send_response().
//
// The v3 read path is zero-copy end to end: the socket reads straight
// into the FrameReader's buffer, request fields are string_views into
// the framed payload, and the single owned copy per request happens
// where it must — building the ScheduleRequest that crosses into the
// service layer. Batch frames pipeline many requests through one read;
// their answers coalesce in the write buffer and flush together.
//
// Production realities handled here:
//  * Framing: requests arrive however the kernel fragments them; an
//    oversized line or frame answers a typed bad_request (the line
//    path resynchronizes on the newline; a bad frame closes the
//    connection after the answer — framing is unrecoverable).
//  * Admission: at most `max_pending` unsettled requests per
//    connection; excess requests answer the typed queue_full error
//    without touching the service.
//  * Backpressure: when the write buffer passes its high watermark the
//    connection stops reading (EPOLLIN off) until the client drains it
//    below half — a slow reader stalls itself, never the server.
//  * Half-close (EOF): remaining requests are answered and flushed,
//    then the connection closes — like EOF on the stdin front-end. An
//    EOF that truncates a binary frame answers bad_request first.
//  * Abrupt disconnect (reset/write failure): still-queued tickets are
//    cancelled so a vanished client's work never occupies a worker;
//    running computations finish and their completions are dropped.

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "net/frame.hpp"
#include "net/line_framer.hpp"
#include "obs/stages.hpp"
#include "service/request_line.hpp"
#include "service/request_view.hpp"
#include "service/ticket.hpp"

namespace treesched::net {

class Server;

/// Stage record of one flushed response, handed to
/// Server::record_flushed when the response's last byte reaches the
/// kernel. Carries what the slow-request log prints: the full stamp
/// set plus enough identity to find the request again.
struct ResponseTiming {
  obs::StageStamps stamps;
  Priority priority = Priority::kBatch;
  std::optional<std::uint64_t> id;
  std::string algo;  ///< short names; stays within SSO on the hot path
  bool cache_hit = false;
  /// Router-stamped distributed trace id (0 = untraced); rides the net
  /// spans and the slow-request / event-log lines so one id follows a
  /// request across tiers.
  std::uint64_t trace_id = 0;
};

class Connection {
 public:
  /// Takes ownership of `fd` (non-blocking, already accepted) and
  /// registers it with the server's event loop.
  Connection(Server& server, int fd, std::uint64_t id);

  /// Cancels still-queued tickets and closes the socket. Unsettled
  /// completions are dropped when they later arrive (the server keeps
  /// its outstanding-ticket accounting regardless).
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  [[nodiscard]] std::uint64_t id() const { return id_; }

  /// Epoll dispatch: reads and frames input on EPOLLIN, flushes on
  /// EPOLLOUT, aborts on EPOLLHUP/EPOLLERR. May defer-close itself.
  void handle_events(std::uint32_t events);

  /// A ticket settled (posted from Server::ticket_settled): records the
  /// result in the pending window and emits every answer that became
  /// orderable.
  void deliver(std::uint64_t key, const ServiceResult& result);

  /// Server drain (SIGTERM/stop): stop reading, answer the pending
  /// window, flush, then close.
  void begin_drain();

 private:
  enum class Mode { kDetect, kText, kBinary };

  /// One request of the pending window. Entries that failed before
  /// reaching submit() carry `result` from birth.
  struct Pending {
    std::uint64_t key = 0;
    Ticket ticket;
    std::optional<std::uint64_t> id;
    TreeHash tree_hash = 0;
    NodeId n = 0;
    std::string algo;
    int p = 1;
    Priority priority = Priority::kBatch;
    std::uint64_t trace_id = 0;  ///< propagated v3 trace context (0 = none)
    std::optional<ServiceResult> result;
  };

  // --- input path ----------------------------------------------------
  void on_readable();
  /// kDetect/kText bytes: resolves the protocol, then frames.
  void handle_bytes(const char* data, std::size_t len);
  /// Records the per-connection protocol-negotiation span (tracer on).
  void note_detected();
  void feed_text(const char* data, std::size_t len);
  void handle_line(const LineFramer::Line& line);
  /// Drains every complete frame buffered in the FrameReader.
  void drain_frames();
  void handle_frame(const Frame& frame);
  /// One v3 request payload (standalone or batch entry): zero-copy
  /// parse, then the shared dispatch. `ctx` is the frame's propagated
  /// trace context (all-zero on the text path and on untraced frames).
  void handle_request_payload(std::string_view payload,
                              const TraceContext& ctx);
  /// Marks the connection protocol-dead: answers bad_request, stops
  /// reading, and lets the window settle and flush before closing.
  void protocol_violation(std::string message);

  // --- shared dispatch (both protocols) ------------------------------
  void dispatch_request(const RequestView& req, const TraceContext& ctx);
  void handle_schedule(const RequestView& req, const TraceContext& ctx);
  void handle_cancel(std::uint64_t cancel_id);
  void handle_ping(std::optional<std::uint64_t> id);
  void handle_stats(std::optional<std::uint64_t> id);
  /// `trace start|stop|status|pull|dump=<path>`: drives the
  /// process-wide obs::Tracer and answers a stats-shaped `trace` line
  /// (`pull` answers the spans themselves, encoded as pairs).
  void handle_trace(const RequestView& req);

  // --- output path ---------------------------------------------------
  /// Emits every answerable response: the settled in-order prefix, plus
  /// settled tagged entries anywhere in the window.
  void flush_ready();
  void emit(const Pending& pending, const ServiceResult& result);
  void emit_error(std::optional<std::uint64_t> id, ErrorCode code,
                  const std::string& message);
  void push_settled_error(std::optional<std::uint64_t> id, ErrorCode code,
                          std::string message);
  [[nodiscard]] bool has_pending_tag(std::uint64_t tag) const;
  /// Appends one response to wbuf_ in the connection's protocol: a
  /// formatted text line or a binary frame.
  void send_response(const ResponseLine& line);

  void send_buffered();     ///< write() as much of wbuf_ as possible
  void update_interest();   ///< recompute EPOLLIN/EPOLLOUT mask
  void abort_connection();  ///< reset path: cancel + defer close
  /// Half-close/drain path: close once nothing is pending or buffered.
  void finish_if_drained();

  Server& server_;
  const int fd_;
  const std::uint64_t id_;
  Mode mode_ = Mode::kDetect;
  std::string prelude_;  ///< undetermined first bytes (at most 4)
  LineFramer framer_;
  FrameReader reader_;
  std::deque<Pending> pending_;
  std::size_t inflight_ = 0;  ///< submitted tickets not yet settled
  std::uint64_t next_key_ = 1;

  std::string wbuf_;
  std::size_t wbuf_head_ = 0;  ///< sent prefix (compacted lazily)
  std::uint32_t interest_ = 0;

  // --- stage timing ---------------------------------------------------
  // The accept/parse stamp of the current read burst: one clock read
  // serves every request framed out of one readable event, so a 16-deep
  // batch frame costs one now_ns(), not sixteen. The serialize stamp is
  // likewise read lazily once per emit burst.
  std::uint64_t burst_ns_ = 0;
  std::uint64_t emit_now_ns_ = 0;  ///< 0 = unread this emit burst
  /// Total bytes ever handed to the kernel (wbuf_ compacts; this never
  /// rewinds). A FlushMark whose target is <= cum_sent_ has fully left
  /// the process.
  std::uint64_t cum_sent_ = 0;
  struct FlushMark {
    std::uint64_t target = 0;  ///< cum_sent_ value that completes it
    ResponseTiming timing;
  };
  std::deque<FlushMark> flush_q_;
  bool read_closed_ = false;   ///< EOF seen or drain begun
  bool closing_ = false;       ///< defer_close already requested
  bool paused_reads_ = false;  ///< backpressure: EPOLLIN off until drained
};

}  // namespace treesched::net

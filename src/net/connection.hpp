#pragma once
// One client connection of the scheduling server (src/net/): owns the
// socket, the incremental LineFramer, the bounded write buffer, and the
// window of in-flight requests. All methods run on the server's I/O
// (event-loop) thread; completions computed on pool workers re-enter
// through Server::ticket_settled -> EventLoop::post -> deliver().
//
// Protocol semantics match the stdin front-end (examples/
// schedule_service): untagged requests are answered in submission
// order, id=-tagged ones stream out the moment they settle, `cancel
// id=<n>` cancels a still-queued request (late cancels answer an
// untagged bad_request ack), and `ping`/`stats` are answered
// immediately, out of band of the pending window.
//
// Production realities handled here:
//  * Framing: requests arrive however the kernel fragments them; an
//    oversized line answers a typed bad_request and the connection
//    survives (LineFramer resynchronizes on the newline).
//  * Admission: at most `max_pending` unsettled requests per
//    connection; excess lines answer the typed queue_full error
//    without touching the service.
//  * Backpressure: when the write buffer passes its high watermark the
//    connection stops reading (EPOLLIN off) until the client drains it
//    below half — a slow reader stalls itself, never the server.
//  * Half-close (EOF): remaining requests are answered and flushed,
//    then the connection closes — like EOF on the stdin front-end.
//  * Abrupt disconnect (reset/write failure): still-queued tickets are
//    cancelled so a vanished client's work never occupies a worker;
//    running computations finish and their completions are dropped.

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "net/line_framer.hpp"
#include "service/request_line.hpp"
#include "service/ticket.hpp"

namespace treesched::net {

class Server;

class Connection {
 public:
  /// Takes ownership of `fd` (non-blocking, already accepted) and
  /// registers it with the server's event loop.
  Connection(Server& server, int fd, std::uint64_t id);

  /// Cancels still-queued tickets and closes the socket. Unsettled
  /// completions are dropped when they later arrive (the server keeps
  /// its outstanding-ticket accounting regardless).
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  [[nodiscard]] std::uint64_t id() const { return id_; }

  /// Epoll dispatch: reads and frames input on EPOLLIN, flushes on
  /// EPOLLOUT, aborts on EPOLLHUP/EPOLLERR. May defer-close itself.
  void handle_events(std::uint32_t events);

  /// A ticket settled (posted from Server::ticket_settled): records the
  /// result in the pending window and emits every answer that became
  /// orderable.
  void deliver(std::uint64_t key, const ServiceResult& result);

  /// Server drain (SIGTERM/stop): stop reading, answer the pending
  /// window, flush, then close.
  void begin_drain();

 private:
  /// One line of the pending window. Entries that failed before
  /// reaching submit() carry `result` from birth.
  struct Pending {
    std::uint64_t key = 0;
    Ticket ticket;
    std::optional<std::uint64_t> id;
    TreeHash tree_hash = 0;
    NodeId n = 0;
    std::string algo;
    int p = 1;
    Priority priority = Priority::kBatch;
    std::optional<ServiceResult> result;
  };

  void handle_line(const LineFramer::Line& line);
  void handle_schedule(const RequestLine& parsed);
  void handle_cancel(std::uint64_t cancel_id);
  void handle_ping(const RequestLine& parsed);
  void handle_stats(const RequestLine& parsed);

  /// Emits every answerable response: the settled in-order prefix, plus
  /// settled tagged entries anywhere in the window.
  void flush_ready();
  void emit(const Pending& pending, const ServiceResult& result);
  void emit_error(std::optional<std::uint64_t> id, ErrorCode code,
                  const std::string& message);
  void push_settled_error(std::optional<std::uint64_t> id, ErrorCode code,
                          std::string message);
  [[nodiscard]] bool has_pending_tag(std::uint64_t tag) const;

  void on_readable();
  void send_buffered();           ///< write() as much of wbuf_ as possible
  void append_line(std::string line);  ///< + '\n' into wbuf_
  void update_interest();         ///< recompute EPOLLIN/EPOLLOUT mask
  void abort_connection();        ///< reset path: cancel + defer close
  /// Half-close/drain path: close once nothing is pending or buffered.
  void finish_if_drained();

  Server& server_;
  const int fd_;
  const std::uint64_t id_;
  LineFramer framer_;
  std::deque<Pending> pending_;
  std::size_t inflight_ = 0;  ///< submitted tickets not yet settled
  std::uint64_t next_key_ = 1;

  std::string wbuf_;
  std::size_t wbuf_head_ = 0;  ///< sent prefix (compacted lazily)
  std::uint32_t interest_ = 0;
  bool read_closed_ = false;   ///< EOF seen or drain begun
  bool closing_ = false;       ///< defer_close already requested
  bool paused_reads_ = false;  ///< backpressure: EPOLLIN off until drained
};

}  // namespace treesched::net

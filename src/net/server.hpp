#pragma once
// The networked scheduling server (src/net/): an epoll-driven front-end
// serving many concurrent clients over TCP or a unix-domain socket,
// multiplexed onto ONE I/O thread. Each connection speaks either
// protocol — text v2 (service/request_line.hpp) or binary v3
// (net/frame.hpp) — negotiated by the first bytes the client sends.
//
//   net -> service -> sched:
//
//   Client ──TCP──> Connection ──submit()──> SchedulingService ─> pool
//      ^                |  ^                        │
//      └── response ────┘  └── EventLoop::post <────┘ Ticket::on_complete
//
// The I/O thread never blocks and never computes: requests are
// submitted as Tickets and their completions re-enter the loop through
// Ticket::on_complete -> EventLoop::post, which wakes the epoll wait.
// All scheduler compute rides the service's thread pool, exactly as for
// in-process callers — the server is a transport, not a second engine.
//
// Lifecycle: the constructor binds (port 0 = ephemeral, read back via
// port()); run() serves until stop() or — with handle_signals —
// SIGTERM/SIGINT, then drains: the listener closes, connections stop
// reading, every accepted request is answered or cancelled, write
// buffers flush, and run() returns only when no ticket is outstanding,
// so destroying the server (and then the service) is always safe.
//
// Scale limits are explicit and typed: at most max_conns sockets (the
// excess is greeted with a queue_full error line and closed), at most
// max_pending unsettled requests per connection (excess requests answer
// queue_full), at most max_wbuf buffered response bytes per connection
// (past it the connection stops reading until the client drains), at
// most max_line text-line / max_frame binary-frame bytes per request.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "net/connection.hpp"
#include "net/event_loop.hpp"
#include "net/frame.hpp"
#include "net/listener.hpp"
#include "net/metrics_http.hpp"
#include "obs/metrics.hpp"
#include "service/service.hpp"

namespace treesched::net {

struct ServerConfig {
  /// IPv4 address the TCP listener binds; "0.0.0.0" opens it to the
  /// network, the loopback default keeps it local.
  std::string bind = "127.0.0.1";
  /// TCP port; 0 = kernel-assigned (see Server::port()).
  std::uint16_t port = 0;
  /// Nonempty = serve on a unix-domain socket at this path instead of
  /// TCP (bind/port are ignored). Same protocols, no TCP stack.
  std::string unix_path;
  /// Accepted-connection bound; excess connections are answered with
  /// one queue_full error line and closed.
  std::size_t max_conns = 256;
  /// Per-connection unsettled-request bound; excess requests answer the
  /// typed queue_full error without reaching the service.
  std::size_t max_pending = 64;
  /// Per-connection write-buffer high watermark in bytes; past it the
  /// connection stops reading until the client drains below half.
  std::size_t max_wbuf = 256 * 1024;
  /// Longest accepted request line (text v2); longer lines answer
  /// bad_request.
  std::size_t max_line = LineFramer::kDefaultMaxLine;
  /// Largest accepted binary frame (v3); a bigger length prefix answers
  /// bad_request and closes — the hostile length is never buffered.
  std::size_t max_frame = kDefaultMaxFrame;
  /// Install a signalfd for SIGTERM/SIGINT and drain gracefully on
  /// either. The caller must block both signals in every thread BEFORE
  /// spawning any (schedule_server does; in-process tests use stop()).
  bool handle_signals = false;
  /// Prometheus scrape endpoint: -1 = no endpoint, 0 = ephemeral port
  /// (read back via Server::metrics_port()), otherwise the port to
  /// bind. Serves `GET /metrics` on the server's own I/O thread — a
  /// scrape and the request path never race.
  int metrics_port = -1;
  /// Bind address of the scrape endpoint (loopback by default — opening
  /// the metrics port to the network is a deliberate act).
  std::string metrics_bind = "127.0.0.1";
  /// Slow-request log threshold in milliseconds: a request whose
  /// accept-to-flush time exceeds it logs its full stage breakdown to
  /// stderr. 0 = disabled.
  double slow_ms = 0.0;
  /// Structured event-log sink: a file path (opened O_APPEND) or "-"
  /// for stdout. Empty = disabled. Rare operational events (drain,
  /// queue_full, slow requests) emit one JSON line each, carrying the
  /// propagated trace id when the request had one. Process-wide: the
  /// first server to open it wins; see obs/event_log.hpp.
  std::string log_json;
  /// Directory `trace dump=<file>` may write into. Empty (the default)
  /// disables dumps entirely: the verb names a server-side file, and an
  /// unauthenticated network client must never choose where the server
  /// writes. When set, dump paths are resolved inside this directory —
  /// absolute paths and ".." components are rejected.
  std::string trace_dir;
  /// Directory `file:` tree specs may read from. Empty (the default)
  /// refuses file: specs entirely — the spec names a server-side file,
  /// and an unauthenticated network client must never choose what the
  /// server opens. When set, spec paths are resolved inside this
  /// directory exactly like trace_dir confines trace dumps.
  std::string tree_dir;
  /// Upper bound on the node count a generator spec (random:/synthetic:/
  /// grid:) may request; larger requests answer bad_request before any
  /// allocation. 0 = unlimited (trusted networks only — a client could
  /// request a multi-gigabyte tree in one line).
  std::uint64_t max_spec_nodes = 2'000'000;
  /// Upper bound on the on-disk size of a `file:` tree spec, checked
  /// BEFORE the file is read (max_spec_nodes bounds the parsed tree;
  /// this bounds the read itself). 0 = unlimited.
  std::uint64_t max_spec_bytes = 16 << 20;
  /// Hard ceiling on the graceful drain, in milliseconds: a SIGTERM/
  /// stop() drain normally waits for every client to read its last
  /// answers, but a client that never reads would hold the process up
  /// forever. Past the timeout the remaining connections are closed
  /// (their queued tickets cancelled) and the drain completes. 0 = wait
  /// forever (the pre-timeout behavior).
  double drain_timeout_ms = 0.0;
};

/// Monotonic server counters (I/O-thread state, reported by `stats`).
struct ServerCounters {
  std::uint64_t accepted = 0;        ///< connections accepted
  std::uint64_t rejected_conns = 0;  ///< turned away at max_conns
  std::uint64_t lines = 0;           ///< requests framed (text lines and
                                     ///< binary request payloads alike)
  std::uint64_t submitted = 0;       ///< tickets submitted to the service
  std::uint64_t v3_conns = 0;        ///< connections that negotiated v3
  std::uint64_t frames_in = 0;       ///< well-formed v3 frames parsed
  std::uint64_t frames_bad = 0;      ///< protocol-violating frames
  std::uint64_t batch_requests = 0;  ///< requests that arrived in batches
  std::uint64_t parse_errors = 0;    ///< requests rejected by the grammar
};

class Server {
 public:
  /// Binds the listener (throws std::system_error on failure) but does
  /// not serve yet.
  Server(SchedulingService& service, ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }
  /// Printable endpoint: "<bind>:<port>" or "unix:<path>".
  [[nodiscard]] const std::string& address() const {
    return listener_.address();
  }
  [[nodiscard]] const ServerConfig& config() const { return config_; }
  /// The bound scrape port; 0 when config.metrics_port is -1 (no
  /// endpoint). Readable right after construction — the bind happens in
  /// the constructor, like the main listener's.
  [[nodiscard]] std::uint16_t metrics_port() const {
    return metrics_http_ ? metrics_http_->port() : 0;
  }

  /// Serves until stop()/SIGTERM, then drains (see file comment).
  /// Blocks; the calling thread becomes the I/O thread.
  void run();

  /// Begins a graceful drain from any thread; run() returns once every
  /// accepted request is answered or cancelled and buffers are flushed.
  void stop();

 private:
  friend class Connection;

  /// Heterogeneous hasher so a string_view spec (v3's zero-copy path)
  /// probes the memo without materializing a std::string first.
  struct SpecHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view spec) const {
      return std::hash<std::string_view>{}(spec);
    }
  };

  // --- Connection-facing surface (I/O thread only) --------------------
  EventLoop& loop() { return loop_; }
  SchedulingService& service() { return service_; }
  ServerCounters& counters() { return counters_; }
  /// Spec -> interned handle, memoized server-wide (all parsing happens
  /// on the I/O thread, so the memo needs no lock). The lookup is
  /// copy-free; the spec string is owned only on first sight. Failures
  /// are typed values: kBadRequest for an unresolvable spec, kStoreFull
  /// (via try_intern) past the store budget.
  Result<TreeHandle, ServiceError> intern_spec(std::string_view spec);
  /// Registers one submitted ticket for the drain accounting and
  /// forwards its completion to the loop. Callable from any thread
  /// (it is the Ticket::on_complete target).
  void ticket_settled(std::uint64_t conn_id, std::uint64_t key,
                      const ServiceResult& result);
  /// ++outstanding_; paired with the ticket_settled posting.
  void note_submitted();
  /// Posts the removal of connection `id` (safe from inside any of the
  /// connection's own methods; idempotent).
  void defer_close(std::uint64_t conn_id);
  [[nodiscard]] bool draining() const { return draining_; }
  /// A response's last byte reached the kernel: record the transport
  /// stage histograms (accept-to-flush, serialize-to-flush by priority
  /// class), the net-layer trace spans, and, past config.slow_ms, log
  /// the stage breakdown (stderr + structured event log).
  void record_flushed(const ResponseTiming& timing);
  /// SLO accounting: one response settled for priority class `cls`
  /// (kPriorityClasses = unclassified), error or success. Feeds the
  /// windowed error-ratio gauges.
  void note_response(int cls, bool ok);

  void accept_ready();
  void begin_drain();
  void maybe_finish();
  /// Creates the transport histograms and bridges ServerCounters into
  /// the service's registry. The bridge reads plain I/O-thread state;
  /// that is sound because every snapshot consumer in this process (the
  /// `stats` verb, the /metrics endpoint) runs on the loop thread too.
  void init_metrics();

  SchedulingService& service_;
  ServerConfig config_;
  EventLoop loop_;
  Listener listener_;
  std::unique_ptr<MetricsHttp> metrics_http_;
  int signal_fd_ = -1;
  int drain_timer_fd_ = -1;  ///< armed by begin_drain past drain_timeout_ms
  bool listener_active_ = false;

  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns_;
  std::unordered_map<std::string, TreeHandle, SpecHash, std::equal_to<>>
      spec_memo_;
  ServerCounters counters_;
  std::uint64_t next_conn_id_ = 1;
  /// Tickets submitted whose completion has not yet been processed on
  /// the loop thread. The drain waits for zero, which guarantees no
  /// Ticket::on_complete callback can touch a dead Server.
  std::uint64_t outstanding_ = 0;
  bool draining_ = false;

  /// Collector liveness guard: the counters bridge registered with the
  /// service's registry bails once this server is gone, so a registry
  /// that outlives the server stays safe to snapshot.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  /// Transport stage histograms (owned by the service's registry).
  /// h_write_stall_[kPriorityClasses] is the class="all" aggregate that
  /// carries the stats-verb key.
  obs::Histogram* h_net_e2e_ = nullptr;
  obs::Histogram* h_write_stall_[kPriorityClasses + 1] = {};
  /// Per-class accept-to-flush histograms (class="..." labels beside
  /// the unlabeled aggregate above). Their sliding windows ARE the
  /// per-class rolling p99 the /metrics `_window` gauges export.
  obs::Histogram* h_e2e_class_[kPriorityClasses] = {};
  /// Windowed SLO accounting: responses / errors per priority class
  /// ([kPriorityClasses] = all), read by the error-ratio gauge
  /// collector. Loop-thread state like the counters.
  obs::SlidingCounter slo_responses_[kPriorityClasses + 1];
  obs::SlidingCounter slo_errors_[kPriorityClasses + 1];
};

}  // namespace treesched::net

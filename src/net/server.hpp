#pragma once
// The networked scheduling server (src/net/): an epoll-driven TCP
// front-end speaking protocol v2 (service/request_line.hpp) to many
// concurrent clients, multiplexed onto ONE I/O thread.
//
//   net -> service -> sched:
//
//   Client ──TCP──> Connection ──submit()──> SchedulingService ─> pool
//      ^                |  ^                        │
//      └── response ────┘  └── EventLoop::post <────┘ Ticket::on_complete
//
// The I/O thread never blocks and never computes: requests are
// submitted as Tickets and their completions re-enter the loop through
// Ticket::on_complete -> EventLoop::post, which wakes the epoll wait.
// All scheduler compute rides the service's thread pool, exactly as for
// in-process callers — the server is a transport, not a second engine.
//
// Lifecycle: the constructor binds (port 0 = ephemeral, read back via
// port()); run() serves until stop() or — with handle_signals —
// SIGTERM/SIGINT, then drains: the listener closes, connections stop
// reading, every accepted request is answered or cancelled, write
// buffers flush, and run() returns only when no ticket is outstanding,
// so destroying the server (and then the service) is always safe.
//
// Scale limits are explicit and typed: at most max_conns sockets (the
// excess is greeted with a queue_full error line and closed), at most
// max_pending unsettled requests per connection (excess lines answer
// queue_full), at most max_wbuf buffered response bytes per connection
// (past it the connection stops reading until the client drains).

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "net/connection.hpp"
#include "net/event_loop.hpp"
#include "net/listener.hpp"
#include "service/service.hpp"

namespace treesched::net {

struct ServerConfig {
  /// TCP port on 127.0.0.1; 0 = kernel-assigned (see Server::port()).
  std::uint16_t port = 0;
  /// Accepted-connection bound; excess connections are answered with
  /// one queue_full error line and closed.
  std::size_t max_conns = 256;
  /// Per-connection unsettled-request bound; excess request lines
  /// answer the typed queue_full error without reaching the service.
  std::size_t max_pending = 64;
  /// Per-connection write-buffer high watermark in bytes; past it the
  /// connection stops reading until the client drains below half.
  std::size_t max_wbuf = 256 * 1024;
  /// Longest accepted request line; longer lines answer bad_request.
  std::size_t max_line = LineFramer::kDefaultMaxLine;
  /// Install a signalfd for SIGTERM/SIGINT and drain gracefully on
  /// either. The caller must block both signals in every thread BEFORE
  /// spawning any (schedule_server does; in-process tests use stop()).
  bool handle_signals = false;
};

/// Monotonic server counters (I/O-thread state, reported by `stats`).
struct ServerCounters {
  std::uint64_t accepted = 0;        ///< connections accepted
  std::uint64_t rejected_conns = 0;  ///< turned away at max_conns
  std::uint64_t lines = 0;           ///< request lines framed
  std::uint64_t submitted = 0;       ///< tickets submitted to the service
};

class Server {
 public:
  /// Binds the listener (throws std::system_error on failure) but does
  /// not serve yet.
  Server(SchedulingService& service, ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }
  [[nodiscard]] const ServerConfig& config() const { return config_; }

  /// Serves until stop()/SIGTERM, then drains (see file comment).
  /// Blocks; the calling thread becomes the I/O thread.
  void run();

  /// Begins a graceful drain from any thread; run() returns once every
  /// accepted request is answered or cancelled and buffers are flushed.
  void stop();

 private:
  friend class Connection;

  // --- Connection-facing surface (I/O thread only) --------------------
  EventLoop& loop() { return loop_; }
  SchedulingService& service() { return service_; }
  ServerCounters& counters() { return counters_; }
  /// Spec -> interned handle, memoized server-wide (all parsing happens
  /// on the I/O thread, so the memo needs no lock). Failures are typed
  /// values: kBadRequest for an unresolvable spec, kStoreFull (via
  /// try_intern) past the store budget.
  Result<TreeHandle, ServiceError> intern_spec(const std::string& spec);
  /// Registers one submitted ticket for the drain accounting and
  /// forwards its completion to the loop. Callable from any thread
  /// (it is the Ticket::on_complete target).
  void ticket_settled(std::uint64_t conn_id, std::uint64_t key,
                      const ServiceResult& result);
  /// ++outstanding_; paired with the ticket_settled posting.
  void note_submitted();
  /// Posts the removal of connection `id` (safe from inside any of the
  /// connection's own methods; idempotent).
  void defer_close(std::uint64_t conn_id);
  [[nodiscard]] bool draining() const { return draining_; }

  void accept_ready();
  void begin_drain();
  void maybe_finish();

  SchedulingService& service_;
  ServerConfig config_;
  EventLoop loop_;
  Listener listener_;
  int signal_fd_ = -1;
  bool listener_active_ = false;

  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns_;
  std::unordered_map<std::string, TreeHandle> spec_memo_;
  ServerCounters counters_;
  std::uint64_t next_conn_id_ = 1;
  /// Tickets submitted whose completion has not yet been processed on
  /// the loop thread. The drain waits for zero, which guarantees no
  /// Ticket::on_complete callback can touch a dead Server.
  std::uint64_t outstanding_ = 0;
  bool draining_ = false;
};

}  // namespace treesched::net

#pragma once
// Binary protocol v3 framing (src/net/): length-prefixed frames,
// negotiated on connect and parsed in place from the connection's read
// buffer — the throughput path where text v2 spends its time splitting
// lines and allocating field strings.
//
// Negotiation: the first bytes a client sends decide the protocol. The
// 4-byte magic "\xB3TS3" switches the connection to v3; anything else
// (its first byte 0xB3 is not printable ASCII, so no v2 text line can
// start with it) keeps text v2 unchanged — plain `nc` clients never
// notice v3 exists. A first byte of 0xB3 followed by a wrong magic tail
// is answered with one binary bad_request frame and the connection
// closes.
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//        0     1  opcode
//        1     1  flags     (per-opcode; unused bits must be 0)
//        2     2  reserved  (must be 0)
//        4     4  length    (payload bytes; bounded by max_frame)
//        8   len  payload
//
// Client -> server opcodes:
//   kRequest 0x01  payload = one request line (v2 grammar, no newline),
//                  parsed zero-copy via service/request_view.hpp
//   kBatch   0x02  payload = u32 count, then count x (u32 len, len bytes
//                  of request line) — one frame, many pipelined requests
//   kCancel  0x03  payload = u64 id
//   kPing    0x04  payload = u64 id iff flags & kFlagHasId, else empty
//   kStats   0x05  payload = u64 id iff flags & kFlagHasId, else empty
//
// Trace-context extension: a kRequest/kBatch frame with kFlagHasTrace
// set prefixes its payload with 12 bytes — u64 trace_id, u32 origin
// (the sending node's id) — and the request line(s) follow unchanged.
// The extension rides the PAYLOAD, not the reserved header bytes, so
// reserved-byte hygiene (must be 0, violations close the connection)
// is untouched; flag absent = the exact pre-extension wire format, so
// old clients never change and old servers only ever see it from a
// peer explicitly running with tracing enabled. Text v2 has no trace
// context — a text hop starts a fresh trace.
//
// Server -> client opcodes (every payload leads with u64 id, meaningful
// iff flags & kFlagHasId):
//   kResponse   0x81  flags kFlagOk: u64 id, u64 tree_hash,
//                     u64 peak_memory, f64 makespan (IEEE-754 bits),
//                     u32 n, u32 p, u8 priority, u16 algo_len, algo
//                     bytes. Without kFlagOk: u64 id, u16 code
//                     (ErrorCode's numeric value — service/errors.hpp
//                     numbering IS the wire contract), message bytes to
//                     the end of the payload.
//   kPong       0x84  u64 id iff kFlagHasId, else empty
//   kStatsReply 0x85  u64 id, u32 count, count x (u16 key_len, key
//                     bytes, u64 value)
//
// Responses are tagged exactly like v2 `id=` answers: tagged requests
// may complete out of order, untagged ones keep submission order.
//
// FrameReader parses incrementally and in place: the connection reads
// straight into the reader's buffer (write_ptr/commit) and next()
// returns payload string_views over that buffer — stable until the next
// write_ptr/commit call, i.e. for exactly as long as the caller is
// draining the frames of one read. A frame whose length exceeds
// max_frame, a nonzero reserved field, or a malformed batch payload is
// a protocol violation: next() turns sticky-bad and the connection
// answers one typed bad_request, then closes — it never over-reads.
//
// FrameWriter appends frames to a caller-owned buffer (the connection's
// write buffer), so a batch of completions coalesces into one flush.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "service/request_line.hpp"

namespace treesched::net {

inline constexpr std::string_view kFrameMagic = "\xB3TS3";
inline constexpr std::size_t kFrameHeaderLen = 8;
inline constexpr std::size_t kDefaultMaxFrame = 1 << 20;

enum class Opcode : std::uint8_t {
  // client -> server
  kRequest = 0x01,
  kBatch = 0x02,
  kCancel = 0x03,
  kPing = 0x04,
  kStats = 0x05,
  // server -> client
  kResponse = 0x81,
  kPong = 0x84,
  kStatsReply = 0x85,
  /// Payload identical to kStatsReply (u64 id, u32 count, count x
  /// (u16 key_len, key bytes, u64 value)) — the answer to a `trace`
  /// control verb sent as a kRequest/kBatch request line.
  kTraceReply = 0x86,
};

inline constexpr std::uint8_t kFlagOk = 0x01;
inline constexpr std::uint8_t kFlagHasId = 0x02;
inline constexpr std::uint8_t kFlagCacheHit = 0x04;
/// kRequest/kBatch: the payload leads with a 12-byte trace context
/// (u64 trace_id, u32 origin) before the request line(s).
inline constexpr std::uint8_t kFlagHasTrace = 0x08;

/// Propagated trace identity of one request: the 64-bit trace id the
/// origin stamped plus that origin's node id, so every tier's spans can
/// carry the same correlator. trace_id 0 = untraced.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint32_t origin = 0;
};
inline constexpr std::size_t kTraceContextLen = 12;

/// One framed unit. `payload` is a view into the FrameReader's buffer —
/// valid until the reader's next write_ptr()/commit().
struct Frame {
  Opcode opcode = Opcode::kRequest;
  std::uint8_t flags = 0;
  std::string_view payload;
};

/// Incremental, zero-copy frame parser. Read into write_ptr(), commit()
/// the byte count, then drain with next().
class FrameReader {
 public:
  enum class Status {
    kFrame,     ///< `out` holds the next complete frame
    kNeedMore,  ///< a partial header/payload is buffered; read again
    kBad,       ///< protocol violation (sticky); see bad_reason()
  };

  explicit FrameReader(std::size_t max_frame = kDefaultMaxFrame)
      : max_frame_(max_frame) {}

  /// Writable tail of the buffer, good for at least `hint` bytes. May
  /// compact, invalidating every payload view handed out earlier.
  char* write_ptr(std::size_t hint = 16384);
  [[nodiscard]] std::size_t write_capacity() const {
    return buf_.size() - tail_;
  }
  /// Marks `n` bytes (read into write_ptr()) as available for framing.
  void commit(std::size_t n) { tail_ += n; }

  /// Appends bytes by copy (the negotiation prelude; tests).
  void feed(const char* data, std::size_t len);

  Status next(Frame& out);

  [[nodiscard]] const std::string& bad_reason() const { return bad_reason_; }
  /// Bytes buffered but not yet returned as frames — nonzero at EOF
  /// means the peer vanished mid-frame.
  [[nodiscard]] std::size_t buffered() const { return tail_ - head_; }
  [[nodiscard]] std::size_t max_frame() const { return max_frame_; }

 private:
  std::size_t max_frame_;
  std::vector<char> buf_;
  std::size_t head_ = 0;  ///< consumed prefix
  std::size_t tail_ = 0;  ///< end of valid bytes
  bool bad_ = false;
  std::string bad_reason_;
};

/// Appends v3 frames to a caller-owned byte buffer.
class FrameWriter {
 public:
  explicit FrameWriter(std::string& out) : out_(out) {}

  /// One response frame — kResponse/kPong/kStatsReply by `resp.kind`.
  void response(const ResponseLine& resp);

  // Client -> server frames. The TraceContext overloads set
  // kFlagHasTrace and lead the payload with the 12-byte extension; a
  // zero trace_id emits the plain (flag-free, byte-identical) frame so
  // untraced traffic never grows on the wire.
  void request(std::string_view line);
  void request(std::string_view line, const TraceContext& ctx);
  void batch(const std::vector<std::string>& lines);
  void batch(const std::vector<std::string>& lines, const TraceContext& ctx);
  void cancel(std::uint64_t id);
  void ping(std::optional<std::uint64_t> id);
  void stats(std::optional<std::uint64_t> id);

  /// Raw escape hatch (tests build hostile frames with it).
  void raw_frame(std::uint8_t opcode, std::uint8_t flags,
                 std::string_view payload);

 private:
  std::string& out_;
};

/// Splits the trace-context extension off a kRequest/kBatch frame:
/// without kFlagHasTrace, `ctx` is zeroed and `rest` is the whole
/// payload; with it, the leading 12 bytes decode into `ctx` and `rest`
/// views what follows. False (with a message) when the flag is set but
/// the payload cannot hold the extension — a protocol violation.
bool split_trace_context(const Frame& frame, TraceContext& ctx,
                         std::string_view& rest, std::string& error);

/// Decodes a kCancel payload (exactly one u64 id). False on any other
/// payload size.
bool decode_cancel(const Frame& frame, std::uint64_t& id);

/// Decodes a kPing/kStats payload: u64 id iff kFlagHasId, else empty.
/// False when the payload size contradicts the flag.
bool decode_control_id(const Frame& frame,
                       std::optional<std::uint64_t>& id);

/// Splits a kBatch payload into its request lines (views into the
/// payload, same lifetime). Returns false with a message when the count
/// or an entry length contradicts the payload size — the caller treats
/// that as a protocol violation, exactly like a bad frame header.
bool decode_batch(std::string_view payload,
                  std::vector<std::string_view>& out, std::string& error);

/// Decodes a kResponse/kPong/kStatsReply frame back into the shared
/// in-memory response shape (the client side of the wire). Returns
/// false with a message on a malformed payload.
bool decode_response_frame(const Frame& frame, ResponseLine& out,
                           std::string& error);

}  // namespace treesched::net

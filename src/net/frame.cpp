#include "net/frame.hpp"

#include <bit>
#include <cstring>
#include <limits>

namespace treesched::net {

namespace {

// Little-endian scalar append/read. Explicit byte shifts instead of
// memcpy-of-host-integers so the wire format is endian-stable.

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

std::uint16_t get_u16(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
}

std::uint32_t get_u32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

std::uint64_t get_u64(const char* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

double get_f64(const char* p) { return std::bit_cast<double>(get_u64(p)); }

/// A bounded cursor over a payload — every read checks remaining bytes,
/// so a truncated or hostile payload can never over-read.
class Cursor {
 public:
  explicit Cursor(std::string_view payload) : data_(payload) {}

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

  bool u16(std::uint16_t& out) {
    if (remaining() < 2) return false;
    out = get_u16(data_.data() + pos_);
    pos_ += 2;
    return true;
  }
  bool u32(std::uint32_t& out) {
    if (remaining() < 4) return false;
    out = get_u32(data_.data() + pos_);
    pos_ += 4;
    return true;
  }
  bool u64(std::uint64_t& out) {
    if (remaining() < 8) return false;
    out = get_u64(data_.data() + pos_);
    pos_ += 8;
    return true;
  }
  bool f64(double& out) {
    if (remaining() < 8) return false;
    out = get_f64(data_.data() + pos_);
    pos_ += 8;
    return true;
  }
  bool u8(std::uint8_t& out) {
    if (remaining() < 1) return false;
    out = static_cast<std::uint8_t>(data_[pos_]);
    pos_ += 1;
    return true;
  }
  bool bytes(std::size_t len, std::string_view& out) {
    if (remaining() < len) return false;
    out = data_.substr(pos_, len);
    pos_ += len;
    return true;
  }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

void append_header(std::string& out, std::uint8_t opcode, std::uint8_t flags,
                   std::uint32_t length) {
  out.push_back(static_cast<char>(opcode));
  out.push_back(static_cast<char>(flags));
  put_u16(out, 0);  // reserved
  put_u32(out, length);
}

}  // namespace

// ---------------------------------------------------------------------------
// FrameReader
// ---------------------------------------------------------------------------

char* FrameReader::write_ptr(std::size_t hint) {
  // Compact first (every previously returned payload view is dead by
  // contract), then grow so at least `hint` bytes fit.
  if (head_ > 0) {
    std::memmove(buf_.data(), buf_.data() + head_, tail_ - head_);
    tail_ -= head_;
    head_ = 0;
  }
  if (buf_.size() - tail_ < hint) buf_.resize(tail_ + hint);
  return buf_.data() + tail_;
}

void FrameReader::feed(const char* data, std::size_t len) {
  std::memcpy(write_ptr(len), data, len);
  commit(len);
}

FrameReader::Status FrameReader::next(Frame& out) {
  if (bad_) return Status::kBad;
  if (tail_ - head_ < kFrameHeaderLen) return Status::kNeedMore;
  const char* hdr = buf_.data() + head_;
  const auto opcode = static_cast<std::uint8_t>(hdr[0]);
  const auto flags = static_cast<std::uint8_t>(hdr[1]);
  const std::uint16_t reserved = get_u16(hdr + 2);
  const std::uint32_t length = get_u32(hdr + 4);
  if (reserved != 0) {
    bad_ = true;
    bad_reason_ = "frame header reserved bytes are nonzero";
    return Status::kBad;
  }
  if (length > max_frame_) {
    // A hostile length must never make us buffer (or skip) gigabytes:
    // the connection answers bad_request and closes instead.
    bad_ = true;
    bad_reason_ = "frame of " + std::to_string(length) +
                  " bytes exceeds the " + std::to_string(max_frame_) +
                  "-byte limit";
    return Status::kBad;
  }
  if (tail_ - head_ < kFrameHeaderLen + length) return Status::kNeedMore;
  out.opcode = static_cast<Opcode>(opcode);
  out.flags = flags;
  out.payload =
      std::string_view(buf_.data() + head_ + kFrameHeaderLen, length);
  head_ += kFrameHeaderLen + length;
  return Status::kFrame;
}

// ---------------------------------------------------------------------------
// FrameWriter
// ---------------------------------------------------------------------------

void FrameWriter::raw_frame(std::uint8_t opcode, std::uint8_t flags,
                            std::string_view payload) {
  append_header(out_, opcode, flags,
                static_cast<std::uint32_t>(payload.size()));
  out_.append(payload);
}

void FrameWriter::request(std::string_view line) {
  raw_frame(static_cast<std::uint8_t>(Opcode::kRequest), 0, line);
}

void FrameWriter::request(std::string_view line, const TraceContext& ctx) {
  if (ctx.trace_id == 0) {
    // Untraced stays byte-identical to the pre-extension wire format.
    request(line);
    return;
  }
  append_header(out_, static_cast<std::uint8_t>(Opcode::kRequest),
                kFlagHasTrace,
                static_cast<std::uint32_t>(kTraceContextLen + line.size()));
  put_u64(out_, ctx.trace_id);
  put_u32(out_, ctx.origin);
  out_.append(line);
}

void FrameWriter::batch(const std::vector<std::string>& lines) {
  std::size_t payload_len = 4;
  for (const std::string& line : lines) payload_len += 4 + line.size();
  append_header(out_, static_cast<std::uint8_t>(Opcode::kBatch), 0,
                static_cast<std::uint32_t>(payload_len));
  put_u32(out_, static_cast<std::uint32_t>(lines.size()));
  for (const std::string& line : lines) {
    put_u32(out_, static_cast<std::uint32_t>(line.size()));
    out_.append(line);
  }
}

void FrameWriter::batch(const std::vector<std::string>& lines,
                        const TraceContext& ctx) {
  if (ctx.trace_id == 0) {
    batch(lines);
    return;
  }
  std::size_t payload_len = kTraceContextLen + 4;
  for (const std::string& line : lines) payload_len += 4 + line.size();
  append_header(out_, static_cast<std::uint8_t>(Opcode::kBatch),
                kFlagHasTrace, static_cast<std::uint32_t>(payload_len));
  put_u64(out_, ctx.trace_id);
  put_u32(out_, ctx.origin);
  put_u32(out_, static_cast<std::uint32_t>(lines.size()));
  for (const std::string& line : lines) {
    put_u32(out_, static_cast<std::uint32_t>(line.size()));
    out_.append(line);
  }
}

void FrameWriter::cancel(std::uint64_t id) {
  append_header(out_, static_cast<std::uint8_t>(Opcode::kCancel), 0, 8);
  put_u64(out_, id);
}

namespace {

void control_frame(std::string& out, Opcode op,
                   std::optional<std::uint64_t> id) {
  if (id) {
    append_header(out, static_cast<std::uint8_t>(op), kFlagHasId, 8);
    put_u64(out, *id);
  } else {
    append_header(out, static_cast<std::uint8_t>(op), 0, 0);
  }
}

}  // namespace

void FrameWriter::ping(std::optional<std::uint64_t> id) {
  control_frame(out_, Opcode::kPing, id);
}

void FrameWriter::stats(std::optional<std::uint64_t> id) {
  control_frame(out_, Opcode::kStats, id);
}

void FrameWriter::response(const ResponseLine& resp) {
  std::uint8_t flags = resp.id.has_value() ? kFlagHasId : 0;
  const std::uint64_t id = resp.id.value_or(0);
  switch (resp.kind) {
    case ResponseLine::Kind::kPong:
      control_frame(out_, Opcode::kPong, resp.id);
      return;
    case ResponseLine::Kind::kStats:
    case ResponseLine::Kind::kTrace: {
      std::size_t payload_len = 8 + 4;
      for (const auto& [key, value] : resp.stats) {
        (void)value;
        payload_len += 2 + key.size() + 8;
      }
      const Opcode op = resp.kind == ResponseLine::Kind::kStats
                            ? Opcode::kStatsReply
                            : Opcode::kTraceReply;
      append_header(out_, static_cast<std::uint8_t>(op),
                    flags, static_cast<std::uint32_t>(payload_len));
      put_u64(out_, id);
      put_u32(out_, static_cast<std::uint32_t>(resp.stats.size()));
      for (const auto& [key, value] : resp.stats) {
        put_u16(out_, static_cast<std::uint16_t>(key.size()));
        out_.append(key);
        put_u64(out_, value);
      }
      return;
    }
    case ResponseLine::Kind::kSchedule:
      break;
  }
  if (resp.ok) {
    flags |= kFlagOk;
    if (resp.cache_hit) flags |= kFlagCacheHit;
    const std::size_t payload_len = 8 + 8 + 8 + 8 + 4 + 4 + 1 + 2 +
                                    resp.algo.size();
    append_header(out_, static_cast<std::uint8_t>(Opcode::kResponse), flags,
                  static_cast<std::uint32_t>(payload_len));
    put_u64(out_, id);
    put_u64(out_, resp.tree_hash);
    put_u64(out_, resp.peak_memory);
    put_f64(out_, resp.makespan);
    put_u32(out_, static_cast<std::uint32_t>(resp.n));
    put_u32(out_, static_cast<std::uint32_t>(resp.p));
    out_.push_back(static_cast<char>(resp.priority));
    put_u16(out_, static_cast<std::uint16_t>(resp.algo.size()));
    out_.append(resp.algo);
  } else {
    const std::size_t payload_len = 8 + 2 + resp.message.size();
    append_header(out_, static_cast<std::uint8_t>(Opcode::kResponse), flags,
                  static_cast<std::uint32_t>(payload_len));
    put_u64(out_, id);
    put_u16(out_, static_cast<std::uint16_t>(resp.code));
    out_.append(resp.message);
  }
}

// ---------------------------------------------------------------------------
// control-payload decoders
// ---------------------------------------------------------------------------

bool split_trace_context(const Frame& frame, TraceContext& ctx,
                         std::string_view& rest, std::string& error) {
  ctx = TraceContext{};
  if ((frame.flags & kFlagHasTrace) == 0) {
    rest = frame.payload;
    return true;
  }
  if (frame.payload.size() < kTraceContextLen) {
    error = "frame claims a trace context its " +
            std::to_string(frame.payload.size()) +
            "-byte payload cannot hold";
    return false;
  }
  ctx.trace_id = get_u64(frame.payload.data());
  ctx.origin = get_u32(frame.payload.data() + 8);
  rest = frame.payload.substr(kTraceContextLen);
  return true;
}

bool decode_cancel(const Frame& frame, std::uint64_t& id) {
  if (frame.payload.size() != 8) return false;
  id = get_u64(frame.payload.data());
  return true;
}

bool decode_control_id(const Frame& frame,
                       std::optional<std::uint64_t>& id) {
  id.reset();
  if (frame.flags & kFlagHasId) {
    if (frame.payload.size() != 8) return false;
    id = get_u64(frame.payload.data());
    return true;
  }
  return frame.payload.empty();
}

// ---------------------------------------------------------------------------
// decode_batch
// ---------------------------------------------------------------------------

bool decode_batch(std::string_view payload,
                  std::vector<std::string_view>& out, std::string& error) {
  out.clear();
  Cursor cur(payload);
  std::uint32_t count = 0;
  if (!cur.u32(count)) {
    error = "batch frame shorter than its count field";
    return false;
  }
  // Each entry costs at least its 4-byte length prefix; a count claiming
  // more entries than the payload can hold is hostile.
  if (count > cur.remaining() / 4) {
    error = "batch count " + std::to_string(count) +
            " exceeds what the frame can hold";
    return false;
  }
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t len = 0;
    std::string_view line;
    if (!cur.u32(len) || !cur.bytes(len, line)) {
      error = "batch frame truncated in entry " + std::to_string(i);
      return false;
    }
    out.push_back(line);
  }
  if (cur.remaining() != 0) {
    error = std::to_string(cur.remaining()) +
            " trailing bytes after the last batch entry";
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// decode_response_frame
// ---------------------------------------------------------------------------

bool decode_response_frame(const Frame& frame, ResponseLine& out,
                           std::string& error) {
  out = ResponseLine{};
  Cursor cur(frame.payload);
  std::uint64_t id = 0;
  switch (frame.opcode) {
    case Opcode::kPong: {
      out.kind = ResponseLine::Kind::kPong;
      out.ok = true;
      if (frame.flags & kFlagHasId) {
        if (!cur.u64(id)) {
          error = "pong frame too short for its id";
          return false;
        }
        out.id = id;
      }
      // Exactly the strictness the server's decode_control_id applies
      // to the request direction: an untagged pong has an empty
      // payload, a tagged one exactly its id — both sides must agree
      // on what a valid frame is.
      if (cur.remaining() != 0) {
        error = "pong frame carries trailing bytes";
        return false;
      }
      return true;
    }
    case Opcode::kStatsReply:
    case Opcode::kTraceReply: {
      out.kind = frame.opcode == Opcode::kStatsReply
                     ? ResponseLine::Kind::kStats
                     : ResponseLine::Kind::kTrace;
      out.ok = true;
      std::uint32_t count = 0;
      if (!cur.u64(id) || !cur.u32(count)) {
        error = "stats frame shorter than its fixed header";
        return false;
      }
      if (frame.flags & kFlagHasId) out.id = id;
      // Each entry is at least 10 bytes (u16 len + u64 value); a count
      // claiming more than fits is hostile — reject before reserving.
      if (count > cur.remaining() / 10) {
        error = "stats frame count exceeds its payload";
        return false;
      }
      out.stats.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        std::uint16_t key_len = 0;
        std::string_view key;
        std::uint64_t value = 0;
        if (!cur.u16(key_len) || !cur.bytes(key_len, key) ||
            !cur.u64(value)) {
          error = "stats frame truncated mid-entry";
          return false;
        }
        out.stats.emplace_back(std::string(key), value);
      }
      if (cur.remaining() != 0) {
        error = "stats frame carries trailing bytes after its entries";
        return false;
      }
      return true;
    }
    case Opcode::kResponse:
      break;
    default:
      error = "unexpected response opcode " +
              std::to_string(static_cast<int>(frame.opcode));
      return false;
  }

  out.kind = ResponseLine::Kind::kSchedule;
  if (frame.flags & kFlagOk) {
    out.ok = true;
    out.cache_hit = (frame.flags & kFlagCacheHit) != 0;
    std::uint32_t n = 0, p = 0;
    std::uint8_t priority = 0;
    std::uint16_t algo_len = 0;
    std::string_view algo;
    if (!cur.u64(id) || !cur.u64(out.tree_hash) || !cur.u64(out.peak_memory) ||
        !cur.f64(out.makespan) || !cur.u32(n) || !cur.u32(p) ||
        !cur.u8(priority) || !cur.u16(algo_len) ||
        !cur.bytes(algo_len, algo)) {
      error = "ok response frame truncated";
      return false;
    }
    if (n > static_cast<std::uint32_t>(std::numeric_limits<NodeId>::max()) ||
        p > static_cast<std::uint32_t>(std::numeric_limits<int>::max())) {
      error = "ok response frame carries out-of-range n or p";
      return false;
    }
    if (priority >= kPriorityClasses) {
      error = "ok response frame carries unknown priority " +
              std::to_string(priority);
      return false;
    }
    if (cur.remaining() != 0) {
      error = "ok response frame carries trailing bytes";
      return false;
    }
    if (frame.flags & kFlagHasId) out.id = id;
    out.n = static_cast<NodeId>(n);
    out.p = static_cast<int>(p);
    out.priority = static_cast<Priority>(priority);
    out.algo = std::string(algo);
    return true;
  }

  out.ok = false;
  std::uint16_t code = 0;
  if (!cur.u64(id) || !cur.u16(code)) {
    error = "error response frame truncated";
    return false;
  }
  if (frame.flags & kFlagHasId) out.id = id;
  // The numeric values of ErrorCode are the shared v2/v3 contract
  // (service/errors.hpp); an unknown number is rejected exactly like an
  // unknown text spelling in parse_response_line.
  if (code > static_cast<std::uint16_t>(ErrorCode::kBadRequest)) {
    error = "unknown error code " + std::to_string(code);
    return false;
  }
  out.code = static_cast<ErrorCode>(code);
  std::string_view message;
  (void)cur.bytes(cur.remaining(), message);
  out.message = std::string(message);
  return true;
}

}  // namespace treesched::net

#pragma once
// Prometheus scrape endpoint (src/net/): a deliberately tiny HTTP
// listener riding an existing EventLoop, answering `GET /metrics` with
// the text exposition of one MetricsRegistry and nothing else. It is an
// operations port, not a web server: one request per connection,
// `Connection: close`, no keep-alive, no chunking, no TLS — exactly
// what a scraper or `curl` needs and nothing a hostile client could
// lean on. Any other path answers 404, any other method 405, anything
// that is not HTTP answers 400; oversized request heads are cut off at
// kMaxHead.
//
// Threading: everything here runs on the loop thread of the EventLoop
// handed in — the same thread that owns the scheduling server's
// connections when the endpoint shares its loop. That is what makes it
// safe to snapshot collectors that read loop-thread state (the server's
// ServerCounters bridge): the scrape and the counter writes are
// serialized by construction, not by locks.

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "net/event_loop.hpp"
#include "net/listener.hpp"
#include "obs/metrics.hpp"

namespace treesched::net {

class MetricsHttp {
 public:
  /// Buffered-request-bytes cap, enforced unconditionally: a client
  /// that sends more without finishing its headers is answered 400, and
  /// reading stops the moment a response is queued — body bytes past
  /// the head are never buffered.
  static constexpr std::size_t kMaxHead = 8192;

  /// Binds immediately (throws std::system_error on failure, so a bad
  /// --metrics-port fails at startup, not at first scrape). Serving
  /// starts with start().
  MetricsHttp(EventLoop& loop, obs::MetricsRegistry& registry,
              ListenerConfig config);
  ~MetricsHttp();

  MetricsHttp(const MetricsHttp&) = delete;
  MetricsHttp& operator=(const MetricsHttp&) = delete;

  /// The bound port — the kernel's pick when configured with 0.
  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }
  [[nodiscard]] const std::string& address() const {
    return listener_.address();
  }

  /// Registers the listener with the loop. Call on the loop thread, or
  /// before the loop runs.
  void start();
  /// Unregisters the listener and drops every open scrape connection.
  /// Loop thread only. Idempotent; the destructor calls it.
  void stop();

 private:
  struct Conn {
    int fd = -1;
    std::string rbuf;
    std::string wbuf;
    std::size_t whead = 0;
    bool responded = false;
    std::uint32_t interest = 0;
  };

  void accept_ready();
  void conn_events(std::uint64_t id, std::uint32_t events);
  /// True once the head is complete and a response was queued.
  void respond(Conn& conn);
  void queue_response(Conn& conn, int status, const char* reason,
                      const char* content_type, std::string body);
  void send_buffered(std::uint64_t id, Conn& conn);
  void close_conn(std::uint64_t id);

  EventLoop& loop_;
  obs::MetricsRegistry& registry_;
  Listener listener_;
  bool active_ = false;
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::uint64_t next_id_ = 1;
};

}  // namespace treesched::net

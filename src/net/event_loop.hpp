#pragma once
// Single-threaded epoll reactor (layer 2 of src/net/): every socket of
// the scheduling server — the listener, all client connections, the
// signal fd — is serviced by ONE I/O thread running EventLoop::run().
// Compute never happens here: schedule requests ride the service's
// thread pool, and their completions re-enter the loop through post().
//
//   loop.add(fd, EPOLLIN, [&](uint32_t ev) { ... });  // loop thread only
//   loop.post([&] { ... });   // ANY thread: run fn on the loop thread
//   loop.run();               // until stop()
//
// post() is the only cross-thread entry point: it enqueues the function
// under a mutex and wakes the epoll wait through an eventfd, so a pool
// worker finishing a ticket can hand the response to the I/O thread
// without the I/O thread ever polling or blocking on a ticket. Posted
// functions run in post order, after the fd events of the wakeup
// iteration; every function posted before stop() is invoked before
// run() returns (nothing is silently dropped during a drain).
//
// Handlers may add/modify/remove fds freely, including removing their
// own fd: dispatch looks the handler up per event and skips fds removed
// earlier in the same batch.

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace treesched::net {

class EventLoop {
 public:
  using FdHandler = std::function<void(std::uint32_t events)>;

  /// Throws std::system_error when epoll/eventfd creation fails.
  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` for `events` (EPOLLIN/EPOLLOUT/...). Loop thread
  /// only. The handler receives the ready-event mask.
  void add(int fd, std::uint32_t events, FdHandler handler);

  /// Changes the interest mask of a registered fd. Loop thread only.
  void modify(int fd, std::uint32_t events);

  /// Unregisters `fd` (the caller still owns and closes it). Safe from
  /// inside any handler, including the fd's own.
  void remove(int fd);

  /// Runs `fn` on the loop thread. Callable from ANY thread (and from
  /// handlers: the function runs later in the same or next iteration).
  /// Functions run in post order; everything posted before stop() runs
  /// before run() returns.
  void post(std::function<void()> fn);

  /// Loop thread ONLY: runs `fn` later in the CURRENT iteration — after
  /// the fd dispatch batch and that iteration's posted functions,
  /// before the next epoll wait. No lock, no eventfd wakeup: this is
  /// the cheap way for handlers to coalesce work across one dispatch
  /// batch (e.g. one send() syscall for many enqueues onto a shared
  /// socket). Deferred functions run in defer order and may defer
  /// again; everything deferred before run() returns is invoked.
  void defer(std::function<void()> fn);

  /// Dispatches events until stop(). Must be called from exactly one
  /// thread — that thread becomes the loop thread.
  void run();

  /// Makes run() return after finishing the current iteration and any
  /// already-posted functions. Callable from any thread.
  void stop();

 private:
  void drain_wakeup();
  /// Runs deferred functions until none remain (they may defer again).
  void run_deferred();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  bool stop_ = false;  ///< loop thread only (set via post)
  /// shared_ptr so a handler that removes another fd mid-batch cannot
  /// free a handler the dispatch loop is about to enter.
  std::unordered_map<int, std::shared_ptr<FdHandler>> handlers_;

  std::mutex post_mutex_;
  std::vector<std::function<void()>> posted_;
  std::vector<std::function<void()>> deferred_;  ///< loop thread only
};

}  // namespace treesched::net

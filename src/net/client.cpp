#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>
#include <system_error>

namespace treesched::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

Client::Client(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw std::invalid_argument("Client: not an IPv4 address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("connect");
  }
  const int one = 1;
  (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::shutdown_write() {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_WR);
}

void Client::send_line(const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::optional<std::string> Client::recv_line() {
  for (;;) {
    const std::size_t nl = rbuf_.find('\n', rpos_);
    if (nl != std::string::npos) {
      std::string line = rbuf_.substr(rpos_, nl - rpos_);
      rpos_ = nl + 1;
      if (rpos_ > 65536) {
        rbuf_.erase(0, rpos_);
        rpos_ = 0;
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char buf[8192];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      rbuf_.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return std::nullopt;  // orderly EOF
    if (errno == EINTR) continue;
    throw_errno("recv");
  }
}

ResponseLine Client::request(const std::string& line) {
  send_line(line);
  const std::optional<std::string> reply = recv_line();
  if (!reply) {
    throw std::runtime_error("Client::request: server closed the connection");
  }
  return parse_response_line(*reply);
}

}  // namespace treesched::net

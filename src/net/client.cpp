#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>
#include <system_error>
#include <utility>

namespace treesched::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

Client::Client(const std::string& host, std::uint16_t port, Protocol protocol)
    : protocol_(protocol) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw std::invalid_argument("Client: not an IPv4 address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("connect");
  }
  const int one = 1;
  (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  finish_connect();
}

Client Client::connect_unix(const std::string& path, Protocol protocol) {
  Client client;
  client.protocol_ = protocol;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::invalid_argument("Client: unix socket path too long: " + path);
  }
  path.copy(addr.sun_path, path.size());
  client.fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (client.fd_ < 0) throw_errno("socket(AF_UNIX)");
  if (::connect(client.fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    const int saved = errno;
    ::close(client.fd_);
    client.fd_ = -1;
    errno = saved;
    throw_errno("connect(unix)");
  }
  client.finish_connect();
  return client;
}

void Client::finish_connect() {
  if (protocol_ == Protocol::kV3) {
    send_all(kFrameMagic.data(), kFrameMagic.size(), "send(magic)");
  }
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      protocol_(other.protocol_),
      rbuf_(std::move(other.rbuf_)),
      rpos_(std::exchange(other.rpos_, 0)),
      reader_(std::move(other.reader_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    protocol_ = other.protocol_;
    rbuf_ = std::move(other.rbuf_);
    rpos_ = std::exchange(other.rpos_, 0);
    reader_ = std::move(other.reader_);
  }
  return *this;
}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::shutdown_write() {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_WR);
}

void Client::send_all(const char* data, std::size_t len, const char* what) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd_, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno(what);
    }
    sent += static_cast<std::size_t>(n);
  }
}

void Client::send_line(const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  send_all(framed.data(), framed.size(), "send");
}

std::optional<std::string> Client::recv_line() {
  for (;;) {
    const std::size_t nl = rbuf_.find('\n', rpos_);
    if (nl != std::string::npos) {
      std::string line = rbuf_.substr(rpos_, nl - rpos_);
      rpos_ = nl + 1;
      if (rpos_ > 65536) {
        rbuf_.erase(0, rpos_);
        rpos_ = 0;
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char buf[8192];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      rbuf_.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return std::nullopt;  // orderly EOF
    if (errno == EINTR) continue;
    throw_errno("recv");
  }
}

void Client::send_request(const std::string& line) {
  if (protocol_ == Protocol::kText) {
    send_line(line);
    return;
  }
  std::string out;
  FrameWriter writer(out);
  writer.request(line);
  send_all(out.data(), out.size(), "send(frame)");
}

void Client::send_batch(const std::vector<std::string>& lines) {
  std::string out;
  if (protocol_ == Protocol::kText) {
    for (const std::string& line : lines) {
      out += line;
      out.push_back('\n');
    }
  } else {
    FrameWriter writer(out);
    writer.batch(lines);
  }
  send_all(out.data(), out.size(), "send(batch)");
}

std::optional<ResponseLine> Client::recv_response() {
  if (protocol_ == Protocol::kText) {
    std::optional<std::string> line = recv_line();
    if (!line) return std::nullopt;
    return parse_response_line(*line);
  }
  for (;;) {
    Frame frame;
    const FrameReader::Status status = reader_.next(frame);
    if (status == FrameReader::Status::kFrame) {
      ResponseLine resp;
      std::string error;
      if (!decode_response_frame(frame, resp, error)) {
        throw std::runtime_error("Client::recv_response: " + error);
      }
      return resp;
    }
    if (status == FrameReader::Status::kBad) {
      throw std::runtime_error("Client::recv_response: " +
                               reader_.bad_reason());
    }
    char* dst = reader_.write_ptr();
    const ssize_t n = ::recv(fd_, dst, reader_.write_capacity(), 0);
    if (n > 0) {
      reader_.commit(static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      if (reader_.buffered() > 0) {
        throw std::runtime_error(
            "Client::recv_response: connection closed mid-frame");
      }
      return std::nullopt;  // orderly EOF on a frame boundary
    }
    if (errno == EINTR) continue;
    throw_errno("recv");
  }
}

ResponseLine Client::request(const std::string& line) {
  send_request(line);
  std::optional<ResponseLine> reply = recv_response();
  if (!reply) {
    throw std::runtime_error("Client::request: server closed the connection");
  }
  return *std::move(reply);
}

}  // namespace treesched::net

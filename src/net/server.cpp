#include "net/server.hpp"

#include <signal.h>
#include <sys/epoll.h>
#include <sys/signalfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <system_error>
#include <utility>

#include "campaign/dataset.hpp"

namespace treesched::net {

Server::Server(SchedulingService& service, ServerConfig config)
    : service_(service),
      config_(std::move(config)),
      listener_(ListenerConfig{.bind = config_.bind,
                               .port = config_.port,
                               .unix_path = config_.unix_path}) {}

Server::~Server() {
  if (signal_fd_ >= 0) ::close(signal_fd_);
}

void Server::run() {
  loop_.add(listener_.fd(), EPOLLIN,
            [this](std::uint32_t) { accept_ready(); });
  listener_active_ = true;
  if (config_.handle_signals) {
    sigset_t mask;
    sigemptyset(&mask);
    sigaddset(&mask, SIGTERM);
    sigaddset(&mask, SIGINT);
    signal_fd_ = ::signalfd(-1, &mask, SFD_NONBLOCK | SFD_CLOEXEC);
    if (signal_fd_ < 0) {
      throw std::system_error(errno, std::generic_category(), "signalfd");
    }
    loop_.add(signal_fd_, EPOLLIN, [this](std::uint32_t) {
      signalfd_siginfo info;
      while (::read(signal_fd_, &info, sizeof(info)) > 0) {
      }
      begin_drain();
    });
  }
  loop_.run();
  // Drained: no connection and no outstanding ticket — every accepted
  // request was answered or cancelled, and no Ticket::on_complete
  // callback can reach this Server again.
  if (signal_fd_ >= 0) {
    loop_.remove(signal_fd_);
    ::close(signal_fd_);
    signal_fd_ = -1;
  }
}

void Server::stop() {
  loop_.post([this] { begin_drain(); });
}

void Server::accept_ready() {
  listener_.accept_ready([this](int fd) {
    if (draining_) {
      ::close(fd);
      return;
    }
    if (conns_.size() >= config_.max_conns) {
      ++counters_.rejected_conns;
      // Best-effort courtesy line: a one-shot blocking-ish write on a
      // fresh socket virtually always fits the send buffer.
      ResponseLine line;
      line.ok = false;
      line.code = ErrorCode::kQueueFull;
      line.message = "server at max connections (" +
                     std::to_string(config_.max_conns) + ")";
      const std::string text = format_response_line(line) + "\n";
      (void)::send(fd, text.data(), text.size(), MSG_NOSIGNAL);
      ::close(fd);
      return;
    }
    ++counters_.accepted;
    const std::uint64_t id = next_conn_id_++;
    conns_.emplace(id, std::make_unique<Connection>(*this, fd, id));
  });
}

Result<TreeHandle, ServiceError> Server::intern_spec(std::string_view spec) {
  // Heterogeneous find: the hot path (a spec seen before, which is what
  // a steady workload looks like) costs zero allocations even when the
  // spec is a view into a v3 frame buffer.
  const auto it = spec_memo_.find(spec);
  if (it != spec_memo_.end()) return it->second;
  try {
    // try_intern keeps store rejection typed (kStoreFull); only spec
    // resolution itself (file IO, generator args) still throws.
    Result<TreeHandle, ServiceError> handle =
        service_.try_intern(tree_from_spec(std::string(spec)));
    if (handle.ok()) spec_memo_.emplace(std::string(spec), handle.value());
    return handle;
  } catch (const std::exception& e) {
    return ServiceError{ErrorCode::kBadRequest, e.what(),
                        std::current_exception()};
  }
}

void Server::note_submitted() {
  ++counters_.submitted;
  ++outstanding_;
}

void Server::ticket_settled(std::uint64_t conn_id, std::uint64_t key,
                            const ServiceResult& result) {
  // Runs on whichever thread settled the ticket (pool worker, or the
  // I/O thread itself for cancellations and admission rejections); the
  // copy hands the result to the loop thread. outstanding_ is
  // decremented only there, so the drain cannot finish while a
  // completion is still in flight toward the loop.
  loop_.post([this, conn_id, key, result] {
    --outstanding_;
    const auto it = conns_.find(conn_id);
    if (it != conns_.end()) it->second->deliver(key, result);
    if (draining_) maybe_finish();
  });
}

void Server::defer_close(std::uint64_t conn_id) {
  loop_.post([this, conn_id] {
    conns_.erase(conn_id);  // idempotent; destructor cancels + closes
    if (draining_) maybe_finish();
  });
}

void Server::begin_drain() {
  if (draining_) return;
  draining_ = true;
  if (listener_active_) {
    loop_.remove(listener_.fd());
    listener_active_ = false;
  }
  for (auto& [id, conn] : conns_) conn->begin_drain();
  maybe_finish();
}

void Server::maybe_finish() {
  if (conns_.empty() && outstanding_ == 0) loop_.stop();
}

}  // namespace treesched::net

#include "net/server.hpp"

#include <signal.h>
#include <sys/epoll.h>
#include <sys/signalfd.h>
#include <sys/socket.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <system_error>
#include <utility>

#include "campaign/dataset.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace treesched::net {

Server::Server(SchedulingService& service, ServerConfig config)
    : service_(service),
      config_(std::move(config)),
      listener_(ListenerConfig{.bind = config_.bind,
                               .port = config_.port,
                               .unix_path = config_.unix_path}) {
  if (!config_.log_json.empty() && !obs::EventLog::global().enabled()) {
    std::string error;
    if (!obs::EventLog::global().open(config_.log_json, error)) {
      throw std::system_error(
          std::make_error_code(std::errc::io_error),
          "cannot open --log-json sink: " + error);
    }
  }
  init_metrics();
  if (config_.metrics_port >= 0) {
    metrics_http_ = std::make_unique<MetricsHttp>(
        loop_, service_.registry(),
        ListenerConfig{
            .bind = config_.metrics_bind,
            .port = static_cast<std::uint16_t>(config_.metrics_port),
            .unix_path = {}});
  }
}

Server::~Server() {
  *alive_ = false;
  if (signal_fd_ >= 0) ::close(signal_fd_);
  if (drain_timer_fd_ >= 0) ::close(drain_timer_fd_);
}

void Server::init_metrics() {
  obs::MetricsRegistry& reg = service_.registry();
  // The bridge reads loop-thread counters without synchronization — see
  // the declaration comment for why every snapshot consumer is that
  // same thread. Empty stats_key throughout: the `stats` verb reports
  // these counters directly (transport keys lead the stats line).
  reg.register_collector(
      [this, alive = std::weak_ptr<bool>(alive_)](obs::RegistrySnapshot& out) {
        if (alive.expired()) return;
        const ServerCounters& sc = counters_;
        auto counter = [&](const char* name, const char* help, double v) {
          out.samples.push_back(obs::MetricSample{
              name, "", help, obs::MetricKind::kCounter, v, ""});
        };
        auto gauge = [&](const char* name, const char* help, double v) {
          out.samples.push_back(obs::MetricSample{
              name, "", help, obs::MetricKind::kGauge, v, ""});
        };
        counter("treesched_server_accepted_total", "Connections accepted",
                static_cast<double>(sc.accepted));
        counter("treesched_server_rejected_conns_total",
                "Connections turned away at max_conns",
                static_cast<double>(sc.rejected_conns));
        counter("treesched_server_requests_total",
                "Requests framed (text lines and binary payloads alike)",
                static_cast<double>(sc.lines));
        counter("treesched_server_submitted_total",
                "Tickets submitted to the service",
                static_cast<double>(sc.submitted));
        counter("treesched_server_v3_conns_total",
                "Connections that negotiated binary protocol v3",
                static_cast<double>(sc.v3_conns));
        counter("treesched_server_frames_total",
                "Well-formed v3 frames parsed",
                static_cast<double>(sc.frames_in));
        counter("treesched_server_frames_bad_total",
                "Protocol-violating v3 frames",
                static_cast<double>(sc.frames_bad));
        counter("treesched_server_batch_requests_total",
                "Requests that arrived inside batch frames",
                static_cast<double>(sc.batch_requests));
        counter("treesched_server_parse_errors_total",
                "Requests rejected by the grammar",
                static_cast<double>(sc.parse_errors));
        gauge("treesched_server_connections", "Open connections",
              static_cast<double>(conns_.size()));
        gauge("treesched_server_outstanding",
              "Submitted tickets not yet settled",
              static_cast<double>(outstanding_));
      });
  // Windowed SLO error ratio, one gauge per priority class: errors over
  // responses across the sliding last-minute window (0 when idle).
  reg.register_collector(
      [this, alive = std::weak_ptr<bool>(alive_)](obs::RegistrySnapshot& out) {
        if (alive.expired()) return;
        for (int c = 0; c <= kPriorityClasses; ++c) {
          const char* label = c == kPriorityClasses
                                  ? "all"
                                  : to_string(static_cast<Priority>(c));
          const std::uint64_t total = slo_responses_[c].windowed();
          const std::uint64_t errors = slo_errors_[c].windowed();
          out.samples.push_back(obs::MetricSample{
              "treesched_slo_error_ratio",
              std::string("class=\"") + label + "\"",
              "Errored share of responses over the sliding last-minute "
              "window",
              obs::MetricKind::kGauge,
              total == 0 ? 0.0
                         : static_cast<double>(errors) /
                               static_cast<double>(total),
              ""});
        }
      });
  h_net_e2e_ = &reg.histogram(
      "treesched_net_e2e_seconds", "",
      "Accept-to-flush wall time of one served request",
      obs::Histogram::latency_bounds_ns(), 1e-9, "net_e2e");
  for (int c = 0; c < kPriorityClasses; ++c) {
    std::string labels = "class=\"";
    labels.append(to_string(static_cast<Priority>(c))).append("\"");
    // The per-class rolling p99 SLO gauges ride these histograms'
    // sliding windows (exported as treesched_net_e2e_seconds_window).
    h_e2e_class_[c] = &reg.histogram(
        "treesched_net_e2e_seconds", labels,
        "Accept-to-flush wall time of one served request",
        obs::Histogram::latency_bounds_ns(), 1e-9, "");
  }
  for (int c = 0; c <= kPriorityClasses; ++c) {
    const char* label =
        c == kPriorityClasses ? "all" : to_string(static_cast<Priority>(c));
    std::string labels = "stage=\"write_stall\",class=\"";
    labels.append(label).append("\"");
    h_write_stall_[c] = &reg.histogram(
        "treesched_stage_seconds", labels,
        "Per-stage latency of one request's lifecycle",
        obs::Histogram::latency_bounds_ns(), 1e-9,
        c == kPriorityClasses ? "stage_write_stall" : "");
  }
}

void Server::note_response(int cls, bool ok) {
  if (cls < 0 || cls > kPriorityClasses) cls = kPriorityClasses;
  slo_responses_[cls].inc();
  if (!ok) slo_errors_[cls].inc();
  if (cls != kPriorityClasses) {
    slo_responses_[kPriorityClasses].inc();
    if (!ok) slo_errors_[kPriorityClasses].inc();
  }
}

void Server::record_flushed(const ResponseTiming& timing) {
  using obs::Stage;
  const obs::StageStamps& st = timing.stamps;
  const std::uint64_t e2e = st.between(Stage::kAccept, Stage::kFlush);
  const std::uint64_t stall = st.between(Stage::kSerialize, Stage::kFlush);
  h_net_e2e_->record(e2e);
  int cls = static_cast<int>(timing.priority);
  if (cls < 0 || cls >= kPriorityClasses) cls = kPriorityClasses;
  if (cls != kPriorityClasses) h_e2e_class_[cls]->record(e2e);
  h_write_stall_[cls]->record(stall);
  if (cls != kPriorityClasses) h_write_stall_[kPriorityClasses]->record(stall);
  obs::Tracer& tracer = obs::Tracer::global();
  if (tracer.enabled() && st.has(Stage::kAccept)) {
    // The net-layer residency spans, stamped from the stage record at
    // flush time so the hot path pays nothing while tracing is off.
    // Both carry the propagated trace id — the hook a merged cluster
    // dump correlates router and backend timelines by.
    tracer.record("net/accept", st.at(Stage::kAccept), e2e, timing.trace_id);
    if (st.has(Stage::kSerialize)) {
      tracer.record("net/flush", st.at(Stage::kSerialize), stall,
                    timing.trace_id);
    }
  }
  if (config_.slow_ms <= 0.0 ||
      static_cast<double>(e2e) < config_.slow_ms * 1e6) {
    return;
  }
  obs::EventLog::global().emit(
      "slow_request", timing.trace_id,
      {obs::EventLog::Field::u64("id", timing.id.value_or(0)),
       obs::EventLog::Field::str("class", to_string(timing.priority)),
       obs::EventLog::Field::str("algo", timing.algo),
       obs::EventLog::Field::u64("e2e_us", e2e / 1000),
       obs::EventLog::Field::u64("cache_hit", timing.cache_hit ? 1 : 0)});
  // One stderr line per slow request, built whole so concurrent writers
  // (pool workers log nothing, but the stdin front-end shares stderr)
  // can't interleave mid-line.
  std::string line = "[treesched] slow request";
  if (timing.id) line.append(" id=").append(std::to_string(*timing.id));
  if (!timing.algo.empty()) line.append(" algo=").append(timing.algo);
  line.append(" class=").append(to_string(timing.priority));
  if (timing.cache_hit) line.append(" cache_hit=1");
  char buf[64];
  std::snprintf(buf, sizeof(buf), " e2e=%.3fms",
                static_cast<double>(e2e) / 1e6);
  line.append(buf);
  const auto stage_delta = [&](const char* name, Stage from, Stage to) {
    if (!st.has(from) || !st.has(to)) return;
    std::snprintf(buf, sizeof(buf), " %s=%.3fms", name,
                  static_cast<double>(st.between(from, to)) / 1e6);
    line.append(buf);
  };
  stage_delta("parse", Stage::kAccept, Stage::kParse);
  stage_delta("admit", Stage::kParse, Stage::kAdmit);
  stage_delta("queue_wait", Stage::kAdmit, Stage::kDequeue);
  stage_delta("dispatch", Stage::kDequeue, Stage::kComputeStart);
  stage_delta("compute", Stage::kComputeStart, Stage::kComputeEnd);
  stage_delta("settle", Stage::kComputeEnd, Stage::kSerialize);
  stage_delta("write_stall", Stage::kSerialize, Stage::kFlush);
  line.push_back('\n');
  std::fputs(line.c_str(), stderr);
}

void Server::run() {
  loop_.add(listener_.fd(), EPOLLIN,
            [this](std::uint32_t) { accept_ready(); });
  listener_active_ = true;
  if (metrics_http_) metrics_http_->start();
  if (config_.handle_signals) {
    sigset_t mask;
    sigemptyset(&mask);
    sigaddset(&mask, SIGTERM);
    sigaddset(&mask, SIGINT);
    signal_fd_ = ::signalfd(-1, &mask, SFD_NONBLOCK | SFD_CLOEXEC);
    if (signal_fd_ < 0) {
      throw std::system_error(errno, std::generic_category(), "signalfd");
    }
    loop_.add(signal_fd_, EPOLLIN, [this](std::uint32_t) {
      signalfd_siginfo info;
      while (::read(signal_fd_, &info, sizeof(info)) > 0) {
      }
      begin_drain();
    });
  }
  loop_.run();
  // Drained: no connection and no outstanding ticket — every accepted
  // request was answered or cancelled, and no Ticket::on_complete
  // callback can reach this Server again. (run()'s caller is the loop
  // thread, so tearing down the scrape endpoint here is in-contract.)
  if (metrics_http_) metrics_http_->stop();
  if (signal_fd_ >= 0) {
    loop_.remove(signal_fd_);
    ::close(signal_fd_);
    signal_fd_ = -1;
  }
  if (drain_timer_fd_ >= 0) {
    loop_.remove(drain_timer_fd_);
    ::close(drain_timer_fd_);
    drain_timer_fd_ = -1;
  }
}

void Server::stop() {
  loop_.post([this] { begin_drain(); });
}

void Server::accept_ready() {
  listener_.accept_ready([this](int fd) {
    if (draining_) {
      ::close(fd);
      return;
    }
    if (conns_.size() >= config_.max_conns) {
      ++counters_.rejected_conns;
      // Best-effort courtesy line: a one-shot blocking-ish write on a
      // fresh socket virtually always fits the send buffer.
      ResponseLine line;
      line.ok = false;
      line.code = ErrorCode::kQueueFull;
      line.message = "server at max connections (" +
                     std::to_string(config_.max_conns) + ")";
      const std::string text = format_response_line(line) + "\n";
      (void)::send(fd, text.data(), text.size(), MSG_NOSIGNAL);
      ::close(fd);
      return;
    }
    ++counters_.accepted;
    const std::uint64_t id = next_conn_id_++;
    conns_.emplace(id, std::make_unique<Connection>(*this, fd, id));
  });
}

Result<TreeHandle, ServiceError> Server::intern_spec(std::string_view spec) {
  // Heterogeneous find: the hot path (a spec seen before, which is what
  // a steady workload looks like) costs zero allocations even when the
  // spec is a view into a v3 frame buffer.
  const auto it = spec_memo_.find(spec);
  if (it != spec_memo_.end()) return it->second;
  try {
    // The spec is raw client input: bound generator sizes before any
    // allocation and confine (or refuse) file: reads. The limits throw
    // BEFORE read_tree_file or a generator runs, so the error text can
    // never carry filesystem contents.
    TreeSpecOptions limits;
    limits.max_nodes = config_.max_spec_nodes;
    limits.allow_file = !config_.tree_dir.empty();
    limits.file_dir = config_.tree_dir;
    limits.max_file_bytes = config_.max_spec_bytes;
    // try_intern keeps store rejection typed (kStoreFull); only spec
    // resolution itself (file IO, generator args) still throws.
    Result<TreeHandle, ServiceError> handle =
        service_.try_intern(tree_from_spec(std::string(spec), limits));
    if (handle.ok()) spec_memo_.emplace(std::string(spec), handle.value());
    return handle;
  } catch (const std::exception& e) {
    return ServiceError{ErrorCode::kBadRequest, e.what(),
                        std::current_exception()};
  }
}

void Server::note_submitted() {
  ++counters_.submitted;
  ++outstanding_;
}

void Server::ticket_settled(std::uint64_t conn_id, std::uint64_t key,
                            const ServiceResult& result) {
  // Runs on whichever thread settled the ticket (pool worker, or the
  // I/O thread itself for cancellations and admission rejections); the
  // copy hands the result to the loop thread. outstanding_ is
  // decremented only there, so the drain cannot finish while a
  // completion is still in flight toward the loop.
  loop_.post([this, conn_id, key, result] {
    --outstanding_;
    const auto it = conns_.find(conn_id);
    if (it != conns_.end()) it->second->deliver(key, result);
    if (draining_) maybe_finish();
  });
}

void Server::defer_close(std::uint64_t conn_id) {
  loop_.post([this, conn_id] {
    conns_.erase(conn_id);  // idempotent; destructor cancels + closes
    if (draining_) maybe_finish();
  });
}

void Server::begin_drain() {
  if (draining_) return;
  draining_ = true;
  obs::EventLog::global().emit(
      "drain_begin", 0,
      {obs::EventLog::Field::u64("conns", conns_.size()),
       obs::EventLog::Field::u64("outstanding", outstanding_)});
  if (listener_active_) {
    loop_.remove(listener_.fd());
    listener_active_ = false;
  }
  if (config_.drain_timeout_ms > 0.0 && drain_timer_fd_ < 0) {
    // The drain's hard ceiling: a client that never reads its answers
    // keeps its write buffer from flushing, which would hold run() up
    // forever. Past the timeout every remaining connection closes —
    // undelivered answers are dropped, queued tickets cancelled — and
    // the outstanding-ticket accounting finishes the drain as usual.
    drain_timer_fd_ = ::timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC);
    if (drain_timer_fd_ >= 0) {
      const auto ns =
          static_cast<std::uint64_t>(config_.drain_timeout_ms * 1e6);
      itimerspec spec{};
      spec.it_value.tv_sec = static_cast<time_t>(ns / 1'000'000'000ULL);
      spec.it_value.tv_nsec = static_cast<long>(ns % 1'000'000'000ULL);
      if (spec.it_value.tv_sec == 0 && spec.it_value.tv_nsec == 0) {
        spec.it_value.tv_nsec = 1;
      }
      ::timerfd_settime(drain_timer_fd_, 0, &spec, nullptr);
      loop_.add(drain_timer_fd_, EPOLLIN, [this](std::uint32_t) {
        std::uint64_t expirations = 0;
        while (::read(drain_timer_fd_, &expirations, sizeof(expirations)) >
               0) {
        }
        // Snapshot the ids: defer_close posts erasures, and destructors
        // must not run while we iterate the map.
        std::vector<std::uint64_t> ids;
        ids.reserve(conns_.size());
        for (const auto& [id, conn] : conns_) ids.push_back(id);
        for (const std::uint64_t id : ids) defer_close(id);
      });
    }
  }
  for (auto& [id, conn] : conns_) conn->begin_drain();
  maybe_finish();
}

void Server::maybe_finish() {
  if (conns_.empty() && outstanding_ == 0) {
    obs::EventLog::global().emit("drain_complete", 0, {});
    loop_.stop();
  }
}

}  // namespace treesched::net

#include "sequential/liu.hpp"

#include <algorithm>
#include <stdexcept>

namespace treesched {

namespace {

// A canonical segment: memory rises to hill `h`, then settles at valley `v`
// (both absolute within the subtree's own profile, which starts at 0).
// `head`/`tail` delimit the chain of task ids executed by this segment in
// the global `next` array.
struct Segment {
  MemSize h;
  MemSize v;
  NodeId head;
  NodeId tail;
};

// Incremental view used by the merge ordering: rise p = h - v_prev,
// net growth d = v - v_prev, key = p - d = h - v.
// Sorting by non-increasing (h - v) is Liu's optimal merge order.

class LiuSolver {
 public:
  explicit LiuSolver(const Tree& tree)
      : tree_(tree), next_(static_cast<std::size_t>(tree.size()), kNoNode) {}

  LiuResult run() {
    LiuResult res;
    const NodeId n = tree_.size();
    if (n == 0) return res;
    std::vector<std::vector<Segment>> segs(static_cast<std::size_t>(n));
    for (NodeId i : tree_.natural_postorder()) {
      segs[i] = make_node_segments(i, segs);
      // Children segment lists are dead after merging; free them eagerly to
      // keep the working set linear.
      for (NodeId c : tree_.children(i)) {
        segs[c].clear();
        segs[c].shrink_to_fit();
      }
    }
    const auto& root_segs = segs[tree_.root()];
    if (root_segs.empty()) throw std::logic_error("liu: empty root profile");
    res.peak = root_segs.front().h;  // canonical: first hill is the max
    res.order.reserve(n);
    for (const Segment& s : root_segs) {
      for (NodeId cur = s.head;; cur = next_[cur]) {
        res.order.push_back(cur);
        if (cur == s.tail) break;
      }
    }
    if (static_cast<NodeId>(res.order.size()) != n) {
      throw std::logic_error("liu: traversal does not cover the tree");
    }
    return res;
  }

 private:
  // Builds the canonical segment list for node i given its children's lists.
  std::vector<Segment> make_node_segments(
      NodeId i, std::vector<std::vector<Segment>>& segs) {
    auto ch = tree_.children(i);
    std::vector<Segment> merged;
    MemSize inputs = 0;  // sum of children outputs
    if (!ch.empty()) {
      // Collect (child, index) refs of all children segments and sort by
      // non-increasing (h - v); stable so per-child order is preserved
      // (within a child, h - v is strictly decreasing by canonicality).
      struct Ref {
        MemSize h, v;
        NodeId child;
        std::uint32_t idx;
      };
      std::vector<Ref> refs;
      std::size_t total = 0;
      for (NodeId c : ch) total += segs[c].size();
      refs.reserve(total);
      for (NodeId c : ch) {
        const auto& list = segs[c];
        for (std::uint32_t k = 0; k < list.size(); ++k) {
          refs.push_back({list[k].h, list[k].v, c, k});
        }
        inputs += tree_.output_size(c);
      }
      std::stable_sort(refs.begin(), refs.end(), [](const Ref& a, const Ref& b) {
        // non-increasing h - v, unsigned-safe cross addition
        return a.h + b.v > b.h + a.v;
      });
      // Execute the segments in this order, tracking the absolute profile
      // (base = residual accumulated from segments already run).
      merged.reserve(refs.size() + 1);
      MemSize base = 0;
      std::vector<MemSize> child_resid(ch.size(), 0);
      // Map child -> position for residual bookkeeping.
      for (const Ref& r : refs) {
        const Segment& s = segs[r.child][r.idx];
        // This segment's own profile is relative to the part of its child
        // already executed: previous segments of the same child contributed
        // residual v_{k-1}; the absolute rise of segment k is h_k - v_{k-1}
        // and it settles at v_k - v_{k-1} above its starting point.
        MemSize prev_v = r.idx == 0 ? 0 : segs[r.child][r.idx - 1].v;
        MemSize abs_h = base + (s.h - prev_v);
        MemSize abs_v = base + (s.v - prev_v);
        push_canonical(merged, {abs_h, abs_v, s.head, s.tail});
        base = abs_v;
      }
      (void)child_resid;
      if (base != inputs) {
        throw std::logic_error("liu: residual mismatch after merging");
      }
    }
    // The node itself: rises to inputs + n_i + f_i, settles at f_i.
    Segment self{inputs + tree_.exec_size(i) + tree_.output_size(i),
                 tree_.output_size(i), i, i};
    push_canonical(merged, self);
    return merged;
  }

  // Appends `s` to the canonical list `list`, merging while canonicality
  // (strictly decreasing hills, strictly increasing valleys) is violated.
  // Merging two adjacent segments concatenates their task chains; the
  // combined hill is the max of the two and the combined valley is the
  // final one.
  void push_canonical(std::vector<Segment>& list, Segment s) {
    while (!list.empty()) {
      Segment& top = list.back();
      if (s.h >= top.h || s.v <= top.v) {
        s.h = std::max(s.h, top.h);
        // valley: final memory after both = s.v (unchanged)
        next_[top.tail] = s.head;
        s.head = top.head;
        list.pop_back();
      } else {
        break;
      }
    }
    list.push_back(s);
  }

  const Tree& tree_;
  std::vector<NodeId> next_;
};

}  // namespace

LiuResult liu_optimal_traversal(const Tree& tree) {
  return LiuSolver(tree).run();
}

MemSize min_sequential_memory(const Tree& tree) {
  return liu_optimal_traversal(tree).peak;
}

}  // namespace treesched

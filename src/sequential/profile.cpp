#include "sequential/profile.hpp"

#include <algorithm>
#include <stdexcept>

namespace treesched {

std::vector<MemSize> traversal_profile(const Tree& tree,
                                       const std::vector<NodeId>& order) {
  if (static_cast<NodeId>(order.size()) != tree.size()) {
    throw std::invalid_argument("traversal_profile: bad order length");
  }
  std::vector<MemSize> profile;
  profile.reserve(order.size() * 2);
  MemSize mem = 0;
  for (NodeId i : order) {
    mem += tree.exec_size(i) + tree.output_size(i);
    profile.push_back(mem);  // during processing
    mem -= tree.exec_size(i);
    for (NodeId c : tree.children(i)) mem -= tree.output_size(c);
    profile.push_back(mem);  // residual
  }
  return profile;
}

std::vector<HillValley> canonical_decomposition(
    const std::vector<MemSize>& profile) {
  if (profile.empty()) return {};
  std::vector<HillValley> segs;
  // Stack-merge: every raw step (levels come in (high, low) pairs at task
  // granularity, but arbitrary sequences are handled uniformly by treating
  // each level as a candidate hill followed by itself as valley, then
  // merging adjacent segments that violate canonicality).
  auto push = [&](HillValley s) {
    while (!segs.empty()) {
      HillValley& top = segs.back();
      if (s.hill >= top.hill || s.valley <= top.valley) {
        s.hill = std::max(s.hill, top.hill);
        segs.pop_back();
      } else {
        break;
      }
    }
    segs.push_back(s);
  };
  for (std::size_t k = 0; k + 1 < profile.size(); k += 2) {
    push({std::max(profile[k], profile[k + 1]), profile[k + 1]});
  }
  if (profile.size() % 2 == 1) {
    push({profile.back(), profile.back()});
  }
  return segs;
}

std::vector<HillValley> traversal_segments(const Tree& tree,
                                           const std::vector<NodeId>& order) {
  return canonical_decomposition(traversal_profile(tree, order));
}

}  // namespace treesched

#pragma once
// Memory-optimal *postorder* traversal (Liu 1986, [13] in the paper).
//
// A postorder processes each subtree contiguously. For a node with children
// c_1..c_k whose subtrees have best-postorder peaks P_c and residuals f_c,
// processing child c_j after children c_{l<j} costs
//     sum_{l<j} f_{c_l} + P_{c_j},
// so ordering children by non-increasing (P_c - f_c) is optimal (classic
// exchange argument); the node itself then needs sum f_c + n_i + f_i.
//
// The optimal postorder is the paper's reference for "minimum sequential
// memory" in the whole experimental section (§6.1): it is optimal among all
// traversals in ~96% of their instances. The true optimum over all
// traversals is sequential/liu.hpp.
//
// Child-ordering policies other than the optimal one are provided for the
// ablation study (bench_ablation_leaforder) and as baselines.

#include <vector>

#include "core/tree.hpp"

namespace treesched {

enum class PostorderPolicy {
  kOptimal,      ///< by non-increasing P_c - f_c (Liu's rule; memory-optimal)
  kByPeak,       ///< by non-increasing P_c
  kByOutput,     ///< by non-increasing f_c
  kByWork,       ///< by non-increasing subtree work W_c
  kNatural,      ///< children in their stored order
};

struct PostorderResult {
  std::vector<NodeId> order;  ///< children-before-parents traversal
  MemSize peak = 0;           ///< peak memory of this traversal
};

/// Computes the postorder traversal under `policy`. O(n log n).
PostorderResult postorder(const Tree& tree,
                          PostorderPolicy policy = PostorderPolicy::kOptimal);

/// Convenience: peak memory of the optimal postorder (the paper's M_seq
/// estimate).
MemSize best_postorder_memory(const Tree& tree);

/// Position of each node in `order` (inverse permutation).
std::vector<NodeId> order_positions(const std::vector<NodeId>& order);

}  // namespace treesched

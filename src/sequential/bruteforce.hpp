#pragma once
// Exponential reference implementations. These are the test oracle for the
// polynomial algorithms:
//  * exact sequential optimum over ALL traversals (DP over downward-closed
//    subsets, O(2^n * n), n <= ~20);
//  * exact optimum over POSTORDERS only (recursive permutation search,
//    usable for small degrees);
//  * exact bi-objective parallel schedules for unit-weight (Pebble Game)
//    trees: minimum makespan under a memory bound and minimum memory under
//    a makespan bound, by BFS over (done, running) state pairs (n <= ~12).

#include <cstdint>
#include <vector>

#include "core/tree.hpp"

namespace treesched {

/// Minimum peak memory over all sequential traversals. Throws if n > 24.
MemSize bruteforce_min_sequential_memory(const Tree& tree);

/// A traversal achieving the exact sequential optimum (same DP as
/// bruteforce_min_sequential_memory with predecessor reconstruction).
/// Throws if n > 24. Backs the "BruteForceSeq" oracle in the scheduler
/// registry.
struct BruteforceTraversal {
  std::vector<NodeId> order;  ///< memory-optimal traversal
  MemSize peak = 0;           ///< == bruteforce_min_sequential_memory(tree)
};
BruteforceTraversal bruteforce_optimal_traversal(const Tree& tree);

/// Minimum peak memory over all *postorders*. Throws if n > 24 or any node
/// has more than 8 children.
MemSize bruteforce_min_postorder_memory(const Tree& tree);

/// Pebble-game parallel brute force (requires w_i = 1 for all i; f/n
/// arbitrary). Explores all schedules where tasks start at integer times.
/// For unit works this is exhaustive (there is always an optimal schedule
/// with integral start times).
struct ParetoPoint {
  double makespan;
  MemSize memory;
};

/// Minimum makespan achievable with p processors and peak memory <= cap.
/// Returns -1.0 if infeasible (cap below the sequential minimum).
double bruteforce_min_makespan_unit(const Tree& tree, int p, MemSize cap);

/// Full Pareto front (makespan, memory) for unit-weight trees on p
/// processors, sorted by increasing makespan / decreasing memory.
std::vector<ParetoPoint> bruteforce_pareto_unit(const Tree& tree, int p);

}  // namespace treesched

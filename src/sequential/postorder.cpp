#include "sequential/postorder.hpp"

#include <algorithm>
#include <stdexcept>

namespace treesched {

namespace {

// Signed peak-minus-residual used for the optimal rule; f can exceed P only
// never (P >= n_i + f_i >= f_i and residual = f_i), but keep signed math to
// be safe with MemSize arithmetic.
struct ChildKey {
  NodeId node;
  MemSize peak;
  MemSize resid;
  double work;
};

}  // namespace

PostorderResult postorder(const Tree& tree, PostorderPolicy policy) {
  PostorderResult res;
  const NodeId n = tree.size();
  res.order.reserve(n);
  if (n == 0) return res;

  std::vector<MemSize> peak(static_cast<std::size_t>(n), 0);
  std::vector<double> subwork;
  if (policy == PostorderPolicy::kByWork) subwork = tree.subtree_work();

  // head/next intrusive lists holding each subtree's traversal so that
  // concatenation is O(1) and total construction O(n log n).
  std::vector<NodeId> head(static_cast<std::size_t>(n), kNoNode);
  std::vector<NodeId> tail(static_cast<std::size_t>(n), kNoNode);
  std::vector<NodeId> next(static_cast<std::size_t>(n), kNoNode);

  for (NodeId i : tree.natural_postorder()) {
    auto ch = tree.children(i);
    if (ch.empty()) {
      peak[i] = tree.exec_size(i) + tree.output_size(i);
      head[i] = tail[i] = i;
      continue;
    }
    std::vector<ChildKey> keys;
    keys.reserve(ch.size());
    for (NodeId c : ch) {
      keys.push_back({c, peak[c], tree.output_size(c),
                      subwork.empty() ? 0.0 : subwork[c]});
    }
    switch (policy) {
      case PostorderPolicy::kOptimal:
        std::stable_sort(keys.begin(), keys.end(),
                         [](const ChildKey& a, const ChildKey& b) {
                           // non-increasing (P - f); signed comparison via
                           // cross-addition to avoid unsigned underflow.
                           return a.peak + b.resid > b.peak + a.resid;
                         });
        break;
      case PostorderPolicy::kByPeak:
        std::stable_sort(keys.begin(), keys.end(),
                         [](const ChildKey& a, const ChildKey& b) {
                           return a.peak > b.peak;
                         });
        break;
      case PostorderPolicy::kByOutput:
        std::stable_sort(keys.begin(), keys.end(),
                         [](const ChildKey& a, const ChildKey& b) {
                           return a.resid > b.resid;
                         });
        break;
      case PostorderPolicy::kByWork:
        std::stable_sort(keys.begin(), keys.end(),
                         [](const ChildKey& a, const ChildKey& b) {
                           return a.work > b.work;
                         });
        break;
      case PostorderPolicy::kNatural:
        break;
    }
    MemSize resident = 0;  // outputs of already-processed children
    MemSize pk = 0;
    for (const ChildKey& k : keys) {
      pk = std::max(pk, resident + k.peak);
      resident += k.resid;
    }
    pk = std::max(pk, resident + tree.exec_size(i) + tree.output_size(i));
    peak[i] = pk;
    // Concatenate child lists in chosen order, then append i.
    NodeId h = kNoNode, t = kNoNode;
    for (const ChildKey& k : keys) {
      if (h == kNoNode) {
        h = head[k.node];
        t = tail[k.node];
      } else {
        next[t] = head[k.node];
        t = tail[k.node];
      }
    }
    next[t] = i;
    head[i] = h;
    tail[i] = i;
  }

  const NodeId r = tree.root();
  for (NodeId cur = head[r]; cur != kNoNode; cur = next[cur]) {
    res.order.push_back(cur);
  }
  if (static_cast<NodeId>(res.order.size()) != n) {
    throw std::logic_error("postorder: traversal does not cover the tree");
  }
  res.peak = peak[r];
  return res;
}

MemSize best_postorder_memory(const Tree& tree) {
  return postorder(tree, PostorderPolicy::kOptimal).peak;
}

std::vector<NodeId> order_positions(const std::vector<NodeId>& order) {
  std::vector<NodeId> pos(order.size());
  for (std::size_t k = 0; k < order.size(); ++k) {
    pos[order[k]] = static_cast<NodeId>(k);
  }
  return pos;
}

}  // namespace treesched

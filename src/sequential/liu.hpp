#pragma once
// Liu's exact memory-minimal tree traversal (Liu 1987, [14] in the paper;
// rediscovered by Lam et al. 2011 [11]).
//
// Every traversal of a subtree induces a memory profile starting at 0 and
// ending at f_root. The profile is summarized by its *canonical hill/valley
// decomposition*: segments (h_1, v_1), (h_2, v_2), ... where h_1 is the
// global maximum, v_1 the (last) minimum after it, h_2 the maximum after
// that, and so on; hence h_1 >= h_2 >= ... and v_1 <= v_2 <= ...
//
// Liu's combination theorem: to merge the traversals of independent
// subtrees (the children of a node), execute their canonical segments in
// non-increasing order of (h - v). Because hills decrease and valleys
// increase within each child, this global order respects per-child segment
// order, and an adjacent-exchange argument shows it minimizes the peak.
// Afterwards the node itself is processed (raw segment
// (sum f_c + n_i + f_i, f_i)) and the list is re-canonicalized.
//
// Complexity O(n^2) worst case (long chains of segments), matching the
// paper's statement; in practice near O(n log n) on assembly trees.
//
// The implementation also reconstructs an optimal traversal order by
// threading intrusive linked lists of nodes through the segments.

#include <vector>

#include "core/tree.hpp"

namespace treesched {

struct LiuResult {
  std::vector<NodeId> order;  ///< memory-optimal traversal
  MemSize peak = 0;           ///< minimum sequential memory of the tree
};

/// Exact minimum sequential memory and an optimal traversal.
LiuResult liu_optimal_traversal(const Tree& tree);

/// Convenience: just the minimum memory.
MemSize min_sequential_memory(const Tree& tree);

}  // namespace treesched

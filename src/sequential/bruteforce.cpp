#include "sequential/bruteforce.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_map>

namespace treesched {

namespace {

constexpr MemSize kInf = std::numeric_limits<MemSize>::max();

void check_small(const Tree& tree, NodeId limit) {
  if (tree.size() > limit) {
    throw std::invalid_argument("bruteforce: tree too large");
  }
}

// Memory resident after completing exactly the downward-closed set `mask`:
// outputs of members whose parent is not (yet) in the set.
MemSize resident_after(const Tree& tree, std::uint32_t mask) {
  MemSize m = 0;
  for (NodeId i = 0; i < tree.size(); ++i) {
    if (!(mask >> i & 1u)) continue;
    NodeId par = tree.parent(i);
    if (par == kNoNode || !(mask >> par & 1u)) m += tree.output_size(i);
  }
  return m;
}

}  // namespace

MemSize bruteforce_min_sequential_memory(const Tree& tree) {
  return bruteforce_optimal_traversal(tree).peak;
}

BruteforceTraversal bruteforce_optimal_traversal(const Tree& tree) {
  check_small(tree, 24);
  BruteforceTraversal result;
  const NodeId n = tree.size();
  if (n == 0) return result;
  const std::uint32_t full = (1u << n) - 1u;
  std::vector<MemSize> best(static_cast<std::size_t>(full) + 1, kInf);
  // `resident` is mask-determined (outputs of members whose parent is not
  // yet in the mask), so updating it only on DP improvements is sound.
  std::vector<MemSize> resident(static_cast<std::size_t>(full) + 1, 0);
  std::vector<std::int8_t> choice(static_cast<std::size_t>(full) + 1, -1);
  best[0] = 0;
  for (std::uint32_t mask = 0; mask <= full; ++mask) {
    if (best[mask] == kInf) continue;
    const MemSize res_mem = resident[mask];
    for (NodeId x = 0; x < n; ++x) {
      if (mask >> x & 1u) continue;
      bool ready = true;
      for (NodeId c : tree.children(x)) {
        if (!(mask >> c & 1u)) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      // Processing x on top of `mask`: inputs already resident; add n_x+f_x.
      const MemSize during = res_mem + tree.exec_size(x) + tree.output_size(x);
      const MemSize peak = std::max(best[mask], during);
      const std::uint32_t nm = mask | (1u << x);
      if (peak < best[nm]) {
        best[nm] = peak;
        choice[nm] = static_cast<std::int8_t>(x);
        // residual: x's inputs freed, f_x added.
        MemSize r = res_mem + tree.output_size(x);
        for (NodeId c : tree.children(x)) r -= tree.output_size(c);
        resident[nm] = r;
      }
    }
  }
  if (best[full] == kInf) {
    throw std::logic_error("bruteforce: no traversal found");
  }
  result.peak = best[full];
  result.order.resize(static_cast<std::size_t>(n));
  std::uint32_t mask = full;
  for (NodeId k = n - 1; k >= 0; --k) {
    const auto x = static_cast<NodeId>(choice[mask]);
    result.order[static_cast<std::size_t>(k)] = x;
    mask ^= (1u << x);
  }
  return result;
}

namespace {

// Best postorder peak for subtree rooted at r, trying all child
// permutations.
MemSize best_postorder_rec(const Tree& tree, NodeId r) {
  auto ch = tree.children(r);
  if (ch.empty()) return tree.exec_size(r) + tree.output_size(r);
  if (ch.size() > 8) {
    throw std::invalid_argument("bruteforce postorder: degree too large");
  }
  std::vector<MemSize> peaks;
  MemSize inputs = 0;
  std::vector<NodeId> perm(ch.begin(), ch.end());
  std::sort(perm.begin(), perm.end());
  for (NodeId c : ch) {
    peaks.push_back(0);  // filled below per child id order lookup
    inputs += tree.output_size(c);
  }
  std::unordered_map<NodeId, MemSize> child_peak;
  for (NodeId c : ch) child_peak[c] = best_postorder_rec(tree, c);
  MemSize best = kInf;
  do {
    MemSize resident = 0, pk = 0;
    for (NodeId c : perm) {
      pk = std::max(pk, resident + child_peak[c]);
      resident += tree.output_size(c);
    }
    pk = std::max(pk, inputs + tree.exec_size(r) + tree.output_size(r));
    best = std::min(best, pk);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

}  // namespace

MemSize bruteforce_min_postorder_memory(const Tree& tree) {
  check_small(tree, 24);
  if (tree.empty()) return 0;
  return best_postorder_rec(tree, tree.root());
}

namespace {

// Parallel unit-weight search. State: (done mask, running mask). One time
// step completes all running tasks... no: tasks are unit, so every running
// task finishes exactly one step after it starts. A schedule is therefore a
// sequence of "waves": at each integer time t we pick a set S_t of ready
// tasks, |S_t| <= p; task readiness requires children completed (i.e., in a
// strictly earlier wave). Memory during wave t:
//   resident(done) + sum_{i in S_t} (n_i + f_i).
// After the wave, done' = done | S_t.
// So the state collapses to `done` alone, and we BFS over done-masks.
struct WaveSearch {
  const Tree& tree;
  int p;
  MemSize cap;
  std::unordered_map<std::uint32_t, int> dist;

  explicit WaveSearch(const Tree& t, int procs, MemSize c)
      : tree(t), p(procs), cap(c) {}

  double run() {
    const NodeId n = tree.size();
    const std::uint32_t full = (1u << n) - 1u;
    std::vector<std::uint32_t> frontier{0};
    dist[0] = 0;
    int steps = 0;
    while (!frontier.empty()) {
      std::vector<std::uint32_t> next_frontier;
      for (std::uint32_t done : frontier) {
        if (done == full) return steps;
        // Ready set.
        std::vector<NodeId> ready;
        for (NodeId i = 0; i < n; ++i) {
          if (done >> i & 1u) continue;
          bool ok = true;
          for (NodeId c : tree.children(i)) {
            if (!(done >> c & 1u)) {
              ok = false;
              break;
            }
          }
          if (ok) ready.push_back(i);
        }
        const MemSize res_mem = resident_after(tree, done);
        // Enumerate all subsets of ready of size <= p that fit in cap.
        const std::size_t r = ready.size();
        for (std::uint32_t sub = 1; sub < (1u << r); ++sub) {
          if (static_cast<int>(__builtin_popcount(sub)) > p) continue;
          MemSize need = res_mem;
          for (std::size_t k = 0; k < r; ++k) {
            if (sub >> k & 1u) {
              need += tree.exec_size(ready[k]) + tree.output_size(ready[k]);
            }
          }
          if (need > cap) continue;
          std::uint32_t nd = done;
          for (std::size_t k = 0; k < r; ++k) {
            if (sub >> k & 1u) nd |= 1u << ready[k];
          }
          if (!dist.count(nd)) {
            dist[nd] = steps + 1;
            next_frontier.push_back(nd);
          }
        }
      }
      frontier = std::move(next_frontier);
      ++steps;
    }
    return -1.0;
  }
};

}  // namespace

double bruteforce_min_makespan_unit(const Tree& tree, int p, MemSize cap) {
  check_small(tree, 20);
  for (NodeId i = 0; i < tree.size(); ++i) {
    if (tree.work(i) != 1.0) {
      throw std::invalid_argument("bruteforce parallel: needs unit works");
    }
  }
  if (tree.empty()) return 0.0;
  return WaveSearch(tree, p, cap).run();
}

std::vector<ParetoPoint> bruteforce_pareto_unit(const Tree& tree, int p) {
  // Candidate memory bounds: every achievable peak is a sum of f/n values;
  // sweep caps downward from the (memory-unbounded) requirement.
  std::vector<ParetoPoint> front;
  MemSize cap = kInf;
  for (;;) {
    double ms = bruteforce_min_makespan_unit(tree, p, cap);
    if (ms < 0) break;
    // Find the smallest memory achieving this makespan via binary search on
    // cap; simpler: tighten the cap by reducing it below the peak actually
    // needed. We search the minimal cap with the same makespan.
    MemSize lo = 1, hi = cap == kInf ? 0 : cap;
    if (cap == kInf) {
      // establish a finite upper bound: total of all files
      MemSize tot = 0;
      for (NodeId i = 0; i < tree.size(); ++i) {
        tot += tree.exec_size(i) + tree.output_size(i);
      }
      hi = tot;
    }
    MemSize best_cap = hi;
    while (lo <= hi) {
      MemSize mid = lo + (hi - lo) / 2;
      double m2 = bruteforce_min_makespan_unit(tree, p, mid);
      if (m2 >= 0 && m2 <= ms) {
        best_cap = mid;
        if (mid == 0) break;
        hi = mid - 1;
      } else {
        lo = mid + 1;
      }
    }
    front.push_back({ms, best_cap});
    if (best_cap == 0) break;
    cap = best_cap - 1;  // force strictly less memory next round
  }
  return front;
}

}  // namespace treesched

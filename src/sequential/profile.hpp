#pragma once
// Memory profiles of sequential traversals and their canonical
// hill/valley decomposition — the combinatorial object behind Liu's exact
// algorithm (sequential/liu.hpp), exposed as a first-class API for
// analysis and testing.
//
// For a traversal order sigma of (a subtree of) T, the profile is the
// piecewise-constant resident-memory function sampled at task boundaries.
// Its canonical decomposition is the alternating sequence
//   h_1 >= h_2 >= ... (hills)   and   v_1 <= v_2 <= ... (valleys)
// obtained by taking the global maximum first, then the (last) minimum
// after it, then the maximum after that, and so on. Liu's combination
// theorem schedules canonical segments of independent subtrees in
// non-increasing (h - v) order.

#include <vector>

#include "core/tree.hpp"

namespace treesched {

/// One canonical segment: memory climbs to `hill`, then settles at
/// `valley` (absolute values within the traversal's own profile).
struct HillValley {
  MemSize hill;
  MemSize valley;
};

/// Resident memory after each prefix of `order`, plus the in-processing
/// peaks: profile[2k] is the memory DURING order[k]'s processing and
/// profile[2k+1] the residual after it completes. profile.size() == 2n.
std::vector<MemSize> traversal_profile(const Tree& tree,
                                       const std::vector<NodeId>& order);

/// Canonical hill/valley decomposition of an arbitrary profile (need not
/// come from traversal_profile; any non-empty sequence works, where even
/// entries are treated as potential hills). The result satisfies
/// strictly decreasing hills and strictly increasing valleys, the first
/// hill being the global maximum and the last valley the final level.
std::vector<HillValley> canonical_decomposition(
    const std::vector<MemSize>& profile);

/// Convenience: canonical decomposition of a traversal.
std::vector<HillValley> traversal_segments(const Tree& tree,
                                           const std::vector<NodeId>& order);

}  // namespace treesched

#pragma once
// Structured event log (src/obs/): rare-but-important lifecycle events
// (node death/reconnect, retry-on-alternate, drain, queue_full, slow
// requests) as JSON lines, one event per line, each carrying the trace
// id when the event belongs to a traced request.
//
// Channel contract: emit() is lock-free and signal-safe-ish — the line
// is formatted into a stack buffer and handed to the kernel in ONE
// ::write(2) on an O_APPEND descriptor, so concurrent emitters from any
// thread never interleave mid-line and never contend on a mutex. Events
// are rare (state changes, not per-request traffic), so the syscall per
// event is the right trade against buffering machinery.
//
// Schema: {"ts_ns":<steady-clock ns>,"unix_ms":<wall ms>,
//          "event":"<name>",...fields...}
// ts_ns shares the clock of stage stamps and trace spans, so an event
// lines up with the flame graph; unix_ms is for humans and log mixers.
// Field values are u64 integers or strings (escaped; control bytes are
// replaced). A line that would overflow the stack buffer is truncated
// at a field boundary and flagged with "truncated":1.

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>

namespace treesched::obs {

class EventLog {
 public:
  /// One key/value of an event. Use the u64/str factories; keys must be
  /// literal-lifetime strings without characters needing escapes.
  struct Field {
    const char* key;
    bool is_str;
    std::uint64_t u;
    std::string_view s;

    static Field u64(const char* key, std::uint64_t v) {
      return Field{key, false, v, {}};
    }
    static Field str(const char* key, std::string_view v) {
      return Field{key, true, 0, v};
    }
  };

  EventLog() = default;
  ~EventLog();
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Opens the sink: "-" logs to stdout (fd 1, not owned), anything
  /// else is opened O_APPEND|O_CREAT. Returns false (with a message)
  /// when the path cannot be opened; the log stays disabled.
  bool open(const std::string& target, std::string& error);

  [[nodiscard]] bool enabled() const noexcept { return fd_ >= 0; }

  /// Formats and writes one event line. No-op while disabled. A zero
  /// `trace_id` means "untraced" and the field is omitted.
  void emit(const char* event, std::uint64_t trace_id,
            std::initializer_list<Field> fields) noexcept;

  /// Process-wide log both front-ends and the net layer share.
  static EventLog& global();

 private:
  int fd_ = -1;
  bool owned_ = false;  ///< "-" borrows stdout; paths are owned
};

}  // namespace treesched::obs

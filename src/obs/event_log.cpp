#include "obs/event_log.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "obs/metrics.hpp"

namespace treesched::obs {

EventLog& EventLog::global() {
  static EventLog log;
  return log;
}

EventLog::~EventLog() {
  if (owned_ && fd_ >= 0) ::close(fd_);
}

bool EventLog::open(const std::string& target, std::string& error) {
  if (target == "-") {
    fd_ = STDOUT_FILENO;
    owned_ = false;
    return true;
  }
  const int fd = ::open(target.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                        0644);
  if (fd < 0) {
    error = "cannot open event log \"" + target +
            "\": " + std::strerror(errno);
    return false;
  }
  fd_ = fd;
  owned_ = true;
  return true;
}

namespace {

/// Appends at most the bytes that fit, JSON-escaping quotes/backslashes
/// and replacing control bytes. Returns false when out of room.
bool append_escaped(char* buf, std::size_t cap, std::size_t& len,
                    std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      if (len + 2 > cap) return false;
      buf[len++] = '\\';
      buf[len++] = c;
    } else {
      if (len + 1 > cap) return false;
      buf[len++] = static_cast<unsigned char>(c) < 0x20 ? ' ' : c;
    }
  }
  return true;
}

bool append_raw(char* buf, std::size_t cap, std::size_t& len,
                const char* s) {
  const std::size_t n = std::strlen(s);
  if (len + n > cap) return false;
  std::memcpy(buf + len, s, n);
  len += n;
  return true;
}

bool append_u64(char* buf, std::size_t cap, std::size_t& len,
                std::uint64_t v) {
  char tmp[24];
  const int n = std::snprintf(tmp, sizeof tmp, "%llu",
                              static_cast<unsigned long long>(v));
  if (n < 0 || len + static_cast<std::size_t>(n) > cap) return false;
  std::memcpy(buf + len, tmp, static_cast<std::size_t>(n));
  len += static_cast<std::size_t>(n);
  return true;
}

}  // namespace

void EventLog::emit(const char* event, std::uint64_t trace_id,
                    std::initializer_list<Field> fields) noexcept {
  if (fd_ < 0) return;
  // The whole line lives on the stack; one write() keeps concurrent
  // emitters from interleaving (O_APPEND makes the offset atomic too).
  char buf[1024];
  // Reserve room for the worst-case tail: ,"truncated":1}\n
  const std::size_t cap = sizeof(buf) - 18;
  std::size_t len = 0;
  const std::uint64_t unix_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  bool ok = append_raw(buf, cap, len, "{\"ts_ns\":") &&
            append_u64(buf, cap, len, now_ns()) &&
            append_raw(buf, cap, len, ",\"unix_ms\":") &&
            append_u64(buf, cap, len, unix_ms) &&
            append_raw(buf, cap, len, ",\"event\":\"") &&
            append_escaped(buf, cap, len, event) &&
            append_raw(buf, cap, len, "\"");
  if (ok && trace_id != 0) {
    ok = append_raw(buf, cap, len, ",\"trace_id\":") &&
         append_u64(buf, cap, len, trace_id);
  }
  if (ok) {
    for (const Field& f : fields) {
      const std::size_t before = len;
      bool field_ok = append_raw(buf, cap, len, ",\"") &&
                      append_raw(buf, cap, len, f.key) &&
                      append_raw(buf, cap, len, "\":");
      if (field_ok) {
        if (f.is_str) {
          field_ok = append_raw(buf, cap, len, "\"") &&
                     append_escaped(buf, cap, len, f.s) &&
                     append_raw(buf, cap, len, "\"");
        } else {
          field_ok = append_u64(buf, cap, len, f.u);
        }
      }
      if (!field_ok) {
        // Truncate at the field boundary: never emit half a field.
        len = before;
        ok = false;
        break;
      }
    }
  }
  if (!ok) {
    std::size_t tail = len;
    (void)append_raw(buf, sizeof(buf), tail, ",\"truncated\":1");
    len = tail;
  }
  buf[len++] = '}';
  buf[len++] = '\n';
  // Best effort: a full pipe or closed fd must never take the serving
  // path down with it.
  (void)!::write(fd_, buf, len);
}

}  // namespace treesched::obs

#include "obs/trace.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"

namespace treesched::obs {

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

std::uint64_t Tracer::next_id() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

Tracer::Ring& Tracer::ring_for_thread() {
  // One ring per (thread, tracer). The cache is a tiny thread_local
  // list because tests run several Tracer instances; a thread touches
  // one or two in practice. Keyed by a never-reused id, NOT the Tracer
  // address: a new Tracer allocated where a destroyed one lived must
  // not resolve to the dead Tracer's freed ring. Stale entries linger
  // but can never match again.
  thread_local std::vector<std::pair<std::uint64_t, Ring*>> cache;
  for (auto& [id, ring] : cache) {
    if (id == id_) return *ring;
  }
  std::lock_guard<std::mutex> lock(rings_mu_);
  auto ring = std::make_unique<Ring>();
  ring->tid = static_cast<std::uint32_t>(rings_.size());
  Ring* raw = ring.get();
  rings_.push_back(std::move(ring));
  cache.emplace_back(id_, raw);
  return *raw;
}

void Tracer::record(const char* name, std::uint64_t start_ns,
                    std::uint64_t dur_ns, std::uint64_t arg) noexcept {
  if (!enabled()) return;
  Ring* registered;
  try {
    registered = &ring_for_thread();
  } catch (...) {
    // A thread's FIRST span registers its ring, which allocates; under
    // memory pressure the span is dropped rather than letting bad_alloc
    // escape this noexcept call and terminate the process.
    return;
  }
  Ring& ring = *registered;
  const std::uint64_t idx = ring.next.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring.slots[idx % kRingSpans];
  // Seqlock write: odd sequence marks the slot in flight; the release
  // store of the even sequence publishes the payload to snapshot().
  // Payload stores are release so none can sink above the odd-sequence
  // store (fence-free on purpose: GCC's TSan rejects
  // atomic_thread_fence, and release stores are plain stores on x86).
  const std::uint32_t seq = slot.seq.load(std::memory_order_relaxed) + 1;
  slot.seq.store(seq, std::memory_order_release);
  slot.name.store(name, std::memory_order_release);
  slot.start_ns.store(start_ns, std::memory_order_release);
  slot.dur_ns.store(dur_ns, std::memory_order_release);
  slot.arg.store(arg, std::memory_order_release);
  slot.seq.store(seq + 1, std::memory_order_release);
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<SpanView> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(rings_mu_);
  std::vector<SpanView> out;
  for (const auto& ring : rings_) {
    for (const Slot& slot : ring->slots) {
      const std::uint32_t before = slot.seq.load(std::memory_order_acquire);
      if (before == 0 || (before & 1u) != 0) continue;  // empty or mid-write
      SpanView span;
      // Acquire payload loads keep the sequence re-check below from
      // being reordered above them (the usual acquire fence, expressed
      // per-load because GCC's TSan rejects atomic_thread_fence).
      span.name = slot.name.load(std::memory_order_acquire);
      span.start_ns = slot.start_ns.load(std::memory_order_acquire);
      span.dur_ns = slot.dur_ns.load(std::memory_order_acquire);
      span.arg = slot.arg.load(std::memory_order_acquire);
      span.tid = ring->tid;
      if (slot.seq.load(std::memory_order_acquire) != before) continue;
      if (span.name == nullptr) continue;
      out.push_back(span);
    }
  }
  return out;
}

std::uint64_t Tracer::dropped() const noexcept {
  std::lock_guard<std::mutex> lock(rings_mu_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) {
    const std::uint64_t written = ring->next.load(std::memory_order_relaxed);
    if (written > kRingSpans) total += written - kRingSpans;
  }
  return total;
}

std::vector<std::pair<std::uint32_t, std::uint64_t>> Tracer::dropped_by_ring()
    const {
  std::lock_guard<std::mutex> lock(rings_mu_);
  std::vector<std::pair<std::uint32_t, std::uint64_t>> out;
  out.reserve(rings_.size());
  for (const auto& ring : rings_) {
    const std::uint64_t written = ring->next.load(std::memory_order_relaxed);
    out.emplace_back(ring->tid,
                     written > kRingSpans ? written - kRingSpans : 0);
  }
  return out;
}

const char* Tracer::intern_name(std::string_view name) {
  std::lock_guard<std::mutex> lock(rings_mu_);
  for (const auto& s : interned_) {
    if (*s == name) return s->c_str();
  }
  interned_.push_back(std::make_unique<std::string>(name));
  return interned_.back()->c_str();
}

namespace {
void json_escape(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
    } else {
      os << c;
    }
  }
}
}  // namespace

std::size_t Tracer::write_chrome_trace(std::ostream& os) const {
  const std::vector<SpanView> spans = snapshot();
  // Rebase to the earliest span: steady-clock ns-since-boot values are
  // too large for the default double formatting to keep us precision.
  std::uint64_t base = ~0ULL;
  for (const SpanView& span : spans) base = std::min(base, span.start_ns);
  if (spans.empty()) base = 0;
  const auto saved = os.precision(15);
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const SpanView& span : spans) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"";
    json_escape(os, span.name);
    // ts/dur are microseconds in the trace_event format; keep sub-us
    // precision as decimals.
    os << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << span.tid
       << ",\"ts\":" << static_cast<double>(span.start_ns - base) / 1e3
       << ",\"dur\":" << static_cast<double>(span.dur_ns) / 1e3
       << ",\"args\":{\"arg\":" << span.arg << "}}";
  }
  os << "]}\n";
  os.precision(saved);
  return spans.size();
}

std::size_t write_merged_chrome_trace(std::ostream& os,
                                      const std::vector<ProcessSpans>& procs) {
  // One global rebase: the earliest span anywhere becomes ts 0, so
  // cross-process ordering survives the microsecond conversion (every
  // process on one machine stamps the same steady clock).
  std::uint64_t base = ~0ULL;
  std::size_t total = 0;
  for (const ProcessSpans& proc : procs) {
    for (const MergedSpan& span : proc.spans) {
      base = std::min(base, span.start_ns);
      ++total;
    }
  }
  if (total == 0) base = 0;
  const auto saved = os.precision(15);
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const ProcessSpans& proc : procs) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << proc.pid
       << ",\"args\":{\"name\":\"";
    json_escape(os, proc.name);
    os << "\"}}";
    for (const MergedSpan& span : proc.spans) {
      os << ",{\"name\":\"";
      json_escape(os, span.name);
      os << "\",\"ph\":\"X\",\"pid\":" << proc.pid << ",\"tid\":" << span.tid
         << ",\"ts\":" << static_cast<double>(span.start_ns - base) / 1e3
         << ",\"dur\":" << static_cast<double>(span.dur_ns) / 1e3
         << ",\"args\":{\"arg\":" << span.arg << "}}";
    }
  }
  os << "]}\n";
  os.precision(saved);
  return total;
}

void encode_span_pairs(
    std::vector<SpanView> spans, std::size_t max_spans,
    std::vector<std::pair<std::string, std::uint64_t>>& out) {
  std::size_t omitted = 0;
  if (max_spans != 0 && spans.size() > max_spans) {
    // Keep the latest spans: the tail of the story is what a merged
    // dump correlates against the router's own (recent) spans.
    omitted = spans.size() - max_spans;
    std::nth_element(spans.begin(), spans.begin() + static_cast<long>(omitted),
                     spans.end(), [](const SpanView& a, const SpanView& b) {
                       return a.start_ns < b.start_ns;
                     });
    spans.erase(spans.begin(), spans.begin() + static_cast<long>(omitted));
  }
  out.reserve(out.size() + 1 + spans.size() * 4 + (omitted ? 1 : 0));
  out.emplace_back("spans", spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanView& span = spans[i];
    const std::string idx = std::to_string(i);
    out.emplace_back("n" + idx + ":" + span.name, span.tid);
    out.emplace_back("t" + idx, span.start_ns);
    out.emplace_back("d" + idx, span.dur_ns);
    out.emplace_back("a" + idx, span.arg);
  }
  if (omitted != 0) out.emplace_back("truncated", omitted);
}

bool decode_span_pairs(
    const std::vector<std::pair<std::string, std::uint64_t>>& pairs,
    std::vector<MergedSpan>& out) {
  // The encoder emits span groups in index order, each led by its
  // n<i>:<name> pair; t/d/a fill the span the n pair opened. Unknown
  // keys pass through so a newer backend can add counters freely.
  const auto index_of = [](std::string_view key, char lead,
                           std::size_t end) -> long {
    if (key.size() < 2 || key.front() != lead) return -1;
    long idx = 0;
    for (std::size_t i = 1; i < end; ++i) {
      const char c = key[i];
      if (c < '0' || c > '9' || idx > 1'000'000'000) return -1;
      idx = idx * 10 + (c - '0');
    }
    return end > 1 ? idx : -1;
  };
  long open = -1;  // index of the span group currently being filled
  for (const auto& [key, value] : pairs) {
    const std::size_t colon = key.find(':');
    if (colon != std::string::npos) {
      const long idx = index_of(key, 'n', colon);
      if (idx < 0) continue;
      if (idx != static_cast<long>(out.size())) return false;
      MergedSpan span;
      span.name = key.substr(colon + 1);
      span.tid = static_cast<std::uint32_t>(value);
      out.push_back(std::move(span));
      open = idx;
      continue;
    }
    for (const char lead : {'t', 'd', 'a'}) {
      const long idx = index_of(key, lead, key.size());
      if (idx < 0) continue;
      if (idx != open || out.empty()) return false;
      MergedSpan& span = out.back();
      if (lead == 't') {
        span.start_ns = value;
      } else if (lead == 'd') {
        span.dur_ns = value;
      } else {
        span.arg = value;
      }
      break;
    }
  }
  return true;
}

ScopedSpan::ScopedSpan(Tracer& tracer, const char* name,
                       std::uint64_t arg) noexcept
    : name_(name), arg_(arg) {
  if (!tracer.enabled()) return;
  tracer_ = &tracer;
  start_ns_ = now_ns();
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ == nullptr) return;
  tracer_->record(name_, start_ns_, now_ns() - start_ns_, arg_);
}

}  // namespace treesched::obs

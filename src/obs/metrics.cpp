#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace treesched::obs {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (static_cast<double>(seen) < rank) continue;
    if (i >= bounds.size()) {
      // Overflow bucket: clamp to the largest finite bound.
      return bounds.empty() ? 0.0 : static_cast<double>(bounds.back());
    }
    const double hi = static_cast<double>(bounds[i]);
    const double lo = i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
    const double in_bucket = static_cast<double>(counts[i]);
    if (in_bucket <= 0.0) return hi;
    const double before = static_cast<double>(seen) - in_bucket;
    return lo + (hi - lo) * ((rank - before) / in_bucket);
  }
  return bounds.empty() ? 0.0 : static_cast<double>(bounds.back());
}

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)) {
  if (bounds_.empty()) throw std::invalid_argument("histogram needs bounds");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument("histogram bounds must be strictly sorted");
  }
  for (unsigned i = 0; i < kShards; ++i) {
    auto& shard = shards_.emplace_back();
    shard.buckets = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
    shard.windows = std::vector<Window>(kWindowSlots);
    for (Window& w : shard.windows) {
      w.buckets = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
    }
  }
}

namespace {
// Stable per-thread shard slot: threads take consecutive slots on first
// use, so up to kShards recorders never collide.
unsigned thread_slot() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}
}  // namespace

void Histogram::record_at(std::uint64_t v, std::uint64_t now) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  Shard& shard = shards_[thread_slot() % kShards];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(v, std::memory_order_relaxed);
  // Window view: claim the current epoch's slot (CAS from whatever
  // stale epoch it held and zero it), then add. A recorder that loses
  // the CAS adds into the fresh slot; one racing the winner's zeroing
  // can lose its add from the window — bounded, boundary-only, and
  // never visible in the lifetime arrays above.
  const std::uint64_t epoch = now / kWindowPeriodNs + 1;  // +1: 0 = unused
  Window& w = shard.windows[epoch % kWindowSlots];
  std::uint64_t tag = w.epoch.load(std::memory_order_relaxed);
  if (tag != epoch &&
      w.epoch.compare_exchange_strong(tag, epoch,
                                      std::memory_order_relaxed)) {
    w.sum.store(0, std::memory_order_relaxed);
    for (auto& b : w.buckets) b.store(0, std::memory_order_relaxed);
  }
  w.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  w.sum.fetch_add(v, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  out.bounds = bounds_;
  out.counts.assign(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (std::size_t i = 0; i < out.counts.size(); ++i) {
      out.counts[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
    out.sum += shard.sum.load(std::memory_order_relaxed);
  }
  // The total derives from the buckets, so the +Inf cumulative bucket
  // can never lag a concurrently bumped finite bucket — the exposition
  // stays monotonic in le even while recorders race the snapshot.
  for (std::uint64_t c : out.counts) out.count += c;
  return out;
}

HistogramSnapshot Histogram::windowed_snapshot_at(std::uint64_t now) const {
  HistogramSnapshot out;
  out.bounds = bounds_;
  out.counts.assign(bounds_.size() + 1, 0);
  const std::uint64_t epoch = now / kWindowPeriodNs + 1;
  const std::uint64_t oldest =
      epoch > kWindowSlots ? epoch - kWindowSlots + 1 : 1;
  for (const Shard& shard : shards_) {
    for (const Window& w : shard.windows) {
      const std::uint64_t tag = w.epoch.load(std::memory_order_relaxed);
      if (tag < oldest || tag > epoch) continue;  // aged out or unused
      for (std::size_t i = 0; i < out.counts.size(); ++i) {
        out.counts[i] += w.buckets[i].load(std::memory_order_relaxed);
      }
      out.sum += w.sum.load(std::memory_order_relaxed);
    }
  }
  for (std::uint64_t c : out.counts) out.count += c;
  return out;
}

void SlidingCounter::add_at(std::uint64_t n, std::uint64_t now) noexcept {
  const std::uint64_t epoch = now / kWindowPeriodNs + 1;
  Slot& slot = slots_[epoch % kWindowSlots];
  std::uint64_t tag = slot.epoch.load(std::memory_order_relaxed);
  if (tag != epoch &&
      slot.epoch.compare_exchange_strong(tag, epoch,
                                         std::memory_order_relaxed)) {
    slot.value.store(0, std::memory_order_relaxed);
  }
  slot.value.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t SlidingCounter::windowed_at(std::uint64_t now) const noexcept {
  const std::uint64_t epoch = now / kWindowPeriodNs + 1;
  const std::uint64_t oldest =
      epoch > kWindowSlots ? epoch - kWindowSlots + 1 : 1;
  std::uint64_t total = 0;
  for (const Slot& slot : slots_) {
    const std::uint64_t tag = slot.epoch.load(std::memory_order_relaxed);
    if (tag < oldest || tag > epoch) continue;
    total += slot.value.load(std::memory_order_relaxed);
  }
  return total;
}

const std::vector<std::uint64_t>& Histogram::latency_bounds_ns() {
  static const std::vector<std::uint64_t> kBounds = [] {
    std::vector<std::uint64_t> b;
    // 1us..500us, 1ms..500ms in 1-2-5 steps, then 1s/2s/5s/10s.
    for (std::uint64_t decade : {1'000ULL, 1'000'000ULL}) {
      for (std::uint64_t m : {1, 2, 5, 10, 20, 50, 100, 200, 500}) {
        b.push_back(decade * static_cast<std::uint64_t>(m));
      }
    }
    for (std::uint64_t s : {1, 2, 5, 10}) b.push_back(s * 1'000'000'000ULL);
    return b;
  }();
  return kBounds;
}

const std::vector<std::uint64_t>& Histogram::bytes_bounds() {
  static const std::vector<std::uint64_t> kBounds = [] {
    std::vector<std::uint64_t> b;
    for (std::uint64_t v = 1024; v <= (1ULL << 34); v *= 4) b.push_back(v);
    return b;
  }();
  return kBounds;
}

std::vector<std::pair<std::string, std::uint64_t>>
RegistrySnapshot::stats_pairs() const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const MetricSample& s : samples) {
    if (s.stats_key.empty()) continue;
    const double v = std::max(0.0, s.value);
    out.emplace_back(s.stats_key, static_cast<std::uint64_t>(v));
  }
  for (const HistogramSample& h : histograms) {
    if (h.stats_key.empty()) continue;
    // Latency histograms (ns -> s scale) quote quantiles in integer
    // microseconds; anything else stays in its raw unit.
    const double div = h.scale == 1e-9 ? 1'000.0 : 1.0;
    const char* suffix = h.scale == 1e-9 ? "_us" : "";
    out.emplace_back(h.stats_key + "_count", h.snap.count);
    out.emplace_back(h.stats_key + "_window_count", h.window.count);
    // Quantiles describe the sliding window (what the service is doing
    // NOW); a quiet window falls back to lifetime so the keys never
    // go blank on an idle service.
    const HistogramSnapshot& q_src = h.window.count > 0 ? h.window : h.snap;
    for (auto [q, tag] :
         {std::pair<double, const char*>{0.50, "_p50"},
          std::pair<double, const char*>{0.90, "_p90"},
          std::pair<double, const char*>{0.99, "_p99"}}) {
      out.emplace_back(h.stats_key + tag + suffix,
                       static_cast<std::uint64_t>(q_src.quantile(q) / div));
    }
  }
  return out;
}

namespace {
std::string index_key(const std::string& name, const std::string& labels) {
  std::string k = name;
  k.push_back('\x01');
  k += labels;
  return k;
}
}  // namespace

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& labels,
                                  const std::string& help,
                                  const std::string& stats_key) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string key = index_key(name, labels);
  if (auto it = index_.find(key); it != index_.end()) {
    if (it->second.first != Slot::kCounter) {
      throw std::invalid_argument("metric registered with a different type: " +
                                  name);
    }
    return counters_[it->second.second].metric;
  }
  auto& entry = counters_.emplace_back();
  entry.name = name;
  entry.labels = labels;
  entry.help = help;
  entry.stats_key = stats_key;
  const auto slot = std::make_pair(Slot::kCounter, counters_.size() - 1);
  index_.emplace(key, slot);
  order_.push_back(slot);
  return counters_.back().metric;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& labels,
                              const std::string& help,
                              const std::string& stats_key) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string key = index_key(name, labels);
  if (auto it = index_.find(key); it != index_.end()) {
    if (it->second.first != Slot::kGauge) {
      throw std::invalid_argument("metric registered with a different type: " +
                                  name);
    }
    return gauges_[it->second.second].metric;
  }
  auto& entry = gauges_.emplace_back();
  entry.name = name;
  entry.labels = labels;
  entry.help = help;
  entry.stats_key = stats_key;
  const auto slot = std::make_pair(Slot::kGauge, gauges_.size() - 1);
  index_.emplace(key, slot);
  order_.push_back(slot);
  return gauges_.back().metric;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& labels,
                                      const std::string& help,
                                      std::vector<std::uint64_t> bounds,
                                      double scale,
                                      const std::string& stats_key) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string key = index_key(name, labels);
  if (auto it = index_.find(key); it != index_.end()) {
    if (it->second.first != Slot::kHistogram) {
      throw std::invalid_argument("metric registered with a different type: " +
                                  name);
    }
    return histograms_[it->second.second].metric;
  }
  auto& entry = histograms_.emplace_back(std::move(bounds), scale);
  entry.name = name;
  entry.labels = labels;
  entry.help = help;
  entry.stats_key = stats_key;
  const auto slot = std::make_pair(Slot::kHistogram, histograms_.size() - 1);
  index_.emplace(key, slot);
  order_.push_back(slot);
  return entry.metric;
}

void MetricsRegistry::register_collector(Collector fn) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.push_back(std::move(fn));
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot out;
  for (const Collector& fn : collectors_) fn(out);
  for (const auto& [slot, idx] : order_) {
    switch (slot) {
      case Slot::kCounter: {
        const CounterEntry& e = counters_[idx];
        out.samples.push_back(MetricSample{
            e.name, e.labels, e.help, MetricKind::kCounter,
            static_cast<double>(e.metric.value()), e.stats_key});
        break;
      }
      case Slot::kGauge: {
        const GaugeEntry& e = gauges_[idx];
        out.samples.push_back(MetricSample{
            e.name, e.labels, e.help, MetricKind::kGauge,
            static_cast<double>(e.metric.value()), e.stats_key});
        break;
      }
      case Slot::kHistogram: {
        const HistogramEntry& e = histograms_[idx];
        out.histograms.push_back(HistogramSample{
            e.name, e.labels, e.help, e.scale, e.stats_key,
            e.metric.snapshot(), e.metric.windowed_snapshot()});
        break;
      }
    }
  }
  return out;
}

}  // namespace treesched::obs

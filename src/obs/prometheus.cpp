#include "obs/prometheus.hpp"

#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

namespace treesched::obs {

namespace {

std::string fmt_value(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

void append_header(std::string& out, const std::string& name,
                   const std::string& help, const char* type,
                   std::map<std::string, bool>& seen) {
  if (seen[name]) return;
  seen[name] = true;
  out.append("# HELP ").append(name).append(" ");
  out.append(help.empty() ? name : help).append("\n");
  out.append("# TYPE ").append(name).append(" ").append(type).append("\n");
}

void append_sample(std::string& out, const std::string& name,
                   const std::string& labels, double value) {
  out.append(name);
  if (!labels.empty()) out.append("{").append(labels).append("}");
  out.append(" ").append(fmt_value(value)).append("\n");
}

std::string with_label(const std::string& labels, const char* key,
                       const std::string& value) {
  std::string joined = labels;
  if (!joined.empty()) joined.append(",");
  joined.append(key).append("=\"").append(value).append("\"");
  return joined;
}

std::string with_le(const std::string& labels, const std::string& le) {
  return with_label(labels, "le", le);
}

}  // namespace

std::string render_prometheus(const RegistrySnapshot& snap) {
  std::string out;
  out.reserve(4096);
  std::map<std::string, bool> seen;

  // Group scalar samples by metric name (the format requires one
  // contiguous block per name), preserving first-appearance order.
  std::vector<std::pair<std::string, std::vector<const MetricSample*>>> groups;
  std::map<std::string, std::size_t> group_index;
  for (const MetricSample& s : snap.samples) {
    auto [it, inserted] = group_index.emplace(s.name, groups.size());
    if (inserted) groups.emplace_back(s.name, std::vector<const MetricSample*>{});
    groups[it->second].second.push_back(&s);
  }
  for (const auto& [name, samples] : groups) {
    const MetricSample& head = *samples.front();
    append_header(out, name, head.help,
                  head.kind == MetricKind::kCounter ? "counter" : "gauge",
                  seen);
    for (const MetricSample* s : samples) {
      append_sample(out, name, s->labels, s->value);
    }
  }

  std::vector<std::pair<std::string, std::vector<const HistogramSample*>>>
      hist_groups;
  std::map<std::string, std::size_t> hist_index;
  for (const HistogramSample& h : snap.histograms) {
    auto [it, inserted] = hist_index.emplace(h.name, hist_groups.size());
    if (inserted) {
      hist_groups.emplace_back(h.name, std::vector<const HistogramSample*>{});
    }
    hist_groups[it->second].second.push_back(&h);
  }
  for (const auto& [name, hists] : hist_groups) {
    append_header(out, name, hists.front()->help, "histogram", seen);
    for (const HistogramSample* h : hists) {
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < h->snap.bounds.size(); ++i) {
        cumulative += h->snap.counts[i];
        const double le = static_cast<double>(h->snap.bounds[i]) * h->scale;
        append_sample(out, name + "_bucket", with_le(h->labels, fmt_value(le)),
                      static_cast<double>(cumulative));
      }
      append_sample(out, name + "_bucket", with_le(h->labels, "+Inf"),
                    static_cast<double>(h->snap.count));
      append_sample(out, name + "_sum", h->labels,
                    static_cast<double>(h->snap.sum) * h->scale);
      append_sample(out, name + "_count", h->labels,
                    static_cast<double>(h->snap.count));
    }
  }

  // Sliding-window quantile gauges: <name>_window{quantile=...} reflects
  // the last kWindowSlots x kWindowPeriodNs (about a minute), unlike the
  // lifetime histogram series above. Gauges on purpose — windowed values
  // go down, and the monotonicity checker must not flag them.
  for (const auto& [name, hists] : hist_groups) {
    const std::string wname = name + "_window";
    append_header(out, wname,
                  hists.front()->help + " (sliding last-minute window)",
                  "gauge", seen);
    for (const HistogramSample* h : hists) {
      for (auto [q, tag] : {std::pair<double, const char*>{0.5, "0.5"},
                            std::pair<double, const char*>{0.9, "0.9"},
                            std::pair<double, const char*>{0.99, "0.99"}}) {
        append_sample(out, wname, with_label(h->labels, "quantile", tag),
                      h->window.quantile(q) * h->scale);
      }
    }
    for (const HistogramSample* h : hists) {
      append_sample(out, wname + "_count", h->labels,
                    static_cast<double>(h->window.count));
    }
  }
  return out;
}

}  // namespace treesched::obs

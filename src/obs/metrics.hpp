#pragma once
// Metrics registry (src/obs/): named counters, gauges, and fixed-bucket
// histograms with cheap hot-path updates, snapshotable without stopping
// the world.
//
// Hot-path contract: Counter::inc and Histogram::record are relaxed
// atomic adds — no locks, no allocation, safe from any thread including
// the server's I/O thread and pool workers. Histograms shard their
// bucket arrays by thread so concurrent recorders don't fight over one
// cache line; shards merge at snapshot time.
//
// Value domain: histograms store unsigned integers (nanoseconds for
// latency, bytes for memory) and keep *exact* integer sums, so derived
// means compose — the sum of per-stage means equals the end-to-end mean
// when the stages partition the interval. `scale` only applies at
// export time (ns -> seconds for Prometheus).
//
// The registry hands out node-stable references: a `Counter&` obtained
// once may be cached and hammered forever. Legacy stats structs
// (CacheStats, QueueStats, ServerCounters, ...) are bridged by
// *collectors* — callbacks that append samples to a snapshot — so the
// existing accessors stay the source of truth and nothing is counted
// twice. Collectors run under the registry mutex; they must only read
// atomics or otherwise thread-safe state.

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace treesched::obs {

/// Monotonic clock, nanoseconds. The one timestamp source for stage
/// stamps, histograms, and trace spans, so intervals subtract cleanly.
std::uint64_t now_ns() noexcept;

/// Sliding-window geometry shared by windowed histograms and counters:
/// a ring of epoch-tagged sub-windows merged at read time, covering the
/// most recent ~minute (12 x 5 s). A recorder claims its epoch's slot by
/// CAS and zeroes it before adding; records racing the zeroing at an
/// epoch boundary can be lost from the WINDOW view (never from the
/// lifetime view) — the window is an estimate by design, fully atomic so
/// the hot path takes no lock and stays TSan-clean.
inline constexpr unsigned kWindowSlots = 12;
inline constexpr std::uint64_t kWindowPeriodNs = 5'000'000'000ULL;

/// Monotonically increasing count. Padded to a cache line so adjacent
/// registry entries don't false-share.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  alignas(64) std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time signed value (queue depth, bytes resident).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  alignas(64) std::atomic<std::int64_t> v_{0};
};

/// Merged view of one histogram: cumulative-free bucket counts plus the
/// exact integer sum/count. Quantiles interpolate linearly inside the
/// winning bucket (the standard Prometheus estimate).
struct HistogramSnapshot {
  std::vector<std::uint64_t> bounds;  ///< inclusive upper bounds, sorted
  std::vector<std::uint64_t> counts;  ///< bounds.size()+1; last = overflow
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  /// q in [0,1]; returns a value in the histogram's raw unit. Overflow
  /// quantiles clamp to the largest finite bound (nothing better is
  /// known about them).
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Fixed-bucket histogram over unsigned integers. Buckets are chosen at
/// construction and never change; record() is a binary search plus
/// relaxed adds into a per-thread shard — once into the lifetime arrays
/// (monotonic, what Prometheus `_bucket`/`_sum`/`_count` export) and
/// once into the current epoch's window slot, so windowed_snapshot()
/// can answer "the last minute" without lifetime staleness.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> bounds);

  void record(std::uint64_t v) noexcept { record_at(v, now_ns()); }
  /// Timestamp-injected record, for deterministic window tests.
  void record_at(std::uint64_t v, std::uint64_t now) noexcept;
  [[nodiscard]] HistogramSnapshot snapshot() const;
  /// Merged view of the sub-windows still inside the sliding window at
  /// `now` (kWindowSlots x kWindowPeriodNs). Approximate at epoch
  /// boundaries; exact whenever no recorder races the read.
  [[nodiscard]] HistogramSnapshot windowed_snapshot() const {
    return windowed_snapshot_at(now_ns());
  }
  [[nodiscard]] HistogramSnapshot windowed_snapshot_at(
      std::uint64_t now) const;
  [[nodiscard]] const std::vector<std::uint64_t>& bounds() const {
    return bounds_;
  }

  /// Log-spaced 1-2-5 latency bounds, 1us .. 10s, in nanoseconds.
  static const std::vector<std::uint64_t>& latency_bounds_ns();
  /// Power-of-4 byte bounds, 1KiB .. 16GiB.
  static const std::vector<std::uint64_t>& bytes_bounds();

 private:
  static constexpr unsigned kShards = 8;
  /// One sub-window of one shard. `epoch` stores epoch+1 (0 = never
  /// used) so a fresh slot can't masquerade as epoch 0's live data.
  struct Window {
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<std::uint64_t> sum{0};
    std::vector<std::atomic<std::uint64_t>> buckets;
  };
  struct Shard {
    alignas(64) std::atomic<std::uint64_t> sum{0};
    std::vector<std::atomic<std::uint64_t>> buckets;
    std::vector<Window> windows;  ///< kWindowSlots, indexed epoch % slots
  };

  std::vector<std::uint64_t> bounds_;
  std::deque<Shard> shards_;
};

/// Windowed event counter: same epoch-tagged slot ring as the
/// histograms' window view, for rates that must reflect the last minute
/// (request and error counts feeding the SLO error-ratio gauges).
/// Lifetime totals belong in a Counter; this type only answers "how
/// many in the window".
class SlidingCounter {
 public:
  void inc(std::uint64_t n = 1) noexcept { add_at(n, now_ns()); }
  void add_at(std::uint64_t n, std::uint64_t now) noexcept;
  [[nodiscard]] std::uint64_t windowed() const noexcept {
    return windowed_at(now_ns());
  }
  [[nodiscard]] std::uint64_t windowed_at(std::uint64_t now) const noexcept;

 private:
  struct Slot {
    std::atomic<std::uint64_t> epoch{0};  ///< epoch+1; 0 = never used
    std::atomic<std::uint64_t> value{0};
  };
  Slot slots_[kWindowSlots];
};

enum class MetricKind { kCounter, kGauge };

/// One exported scalar. `labels` is the pre-rendered inner label string
/// (e.g. `class="interactive"`), empty for none. `stats_key` is the
/// short key used by the `stats` control verb; empty means the sample
/// only appears in the Prometheus exposition.
struct MetricSample {
  std::string name;
  std::string labels;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;
  std::string stats_key;
};

/// One exported histogram. `scale` converts the raw integer unit to the
/// exposition unit (1e-9 for ns -> seconds); stats-verb quantiles are
/// emitted in microseconds when scale == 1e-9, raw otherwise.
struct HistogramSample {
  std::string name;
  std::string labels;
  std::string help;
  double scale = 1.0;
  std::string stats_key;
  HistogramSnapshot snap;    ///< lifetime (monotonic _bucket/_sum/_count)
  HistogramSnapshot window;  ///< sliding last-minute view (quantiles)
};

struct RegistrySnapshot {
  std::vector<MetricSample> samples;
  std::vector<HistogramSample> histograms;

  /// Flattens every stats_key'd entry to the (key, integer) pairs the
  /// `stats` verb speaks: scalars as-is (gauges clamp at zero),
  /// histograms as the lifetime <key>_count, the sliding-window
  /// <key>_window_count, and <key>_p50/p90/p99 quantiles computed over
  /// the WINDOW (in microseconds for scale 1e-9, raw units otherwise) —
  /// summaries describe current behavior, not process history. An empty
  /// window falls back to lifetime quantiles so a quiet service still
  /// reports what it last did.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  stats_pairs() const;
};

/// Get-or-create by (name, labels); insertion order is preserved in
/// snapshots so exported text is stable run to run.
class MetricsRegistry {
 public:
  using Collector = std::function<void(RegistrySnapshot&)>;

  Counter& counter(const std::string& name, const std::string& labels,
                   const std::string& help, const std::string& stats_key = "");
  Gauge& gauge(const std::string& name, const std::string& labels,
               const std::string& help, const std::string& stats_key = "");
  Histogram& histogram(const std::string& name, const std::string& labels,
                       const std::string& help,
                       std::vector<std::uint64_t> bounds, double scale,
                       const std::string& stats_key = "");

  /// Collectors run first at snapshot time, in registration order —
  /// register the legacy bridge before creating owned metrics when the
  /// legacy keys must lead the stats line.
  void register_collector(Collector fn);

  [[nodiscard]] RegistrySnapshot snapshot() const;

 private:
  struct CounterEntry {
    std::string name, labels, help, stats_key;
    Counter metric;
  };
  struct GaugeEntry {
    std::string name, labels, help, stats_key;
    Gauge metric;
  };
  struct HistogramEntry {
    std::string name, labels, help, stats_key;
    double scale;
    Histogram metric;
    HistogramEntry(std::vector<std::uint64_t> bounds, double s)
        : scale(s), metric(std::move(bounds)) {}
  };
  enum class Slot { kCounter, kGauge, kHistogram };

  mutable std::mutex mu_;
  std::deque<CounterEntry> counters_;
  std::deque<GaugeEntry> gauges_;
  std::deque<HistogramEntry> histograms_;
  std::vector<std::pair<Slot, std::size_t>> order_;
  std::map<std::string, std::pair<Slot, std::size_t>> index_;
  std::vector<Collector> collectors_;
};

}  // namespace treesched::obs

#pragma once
// Request tracing (src/obs/): lock-free per-thread span ring buffers
// dumped as Chrome trace_event JSON ("ph":"X" complete events), loadable
// in Perfetto or chrome://tracing.
//
// Recording contract: Tracer::record is wait-free after a thread's
// first span — a relaxed enabled check, a monotonically claimed ring
// slot, five atomic stores. Every payload field is an atomic and the
// slot carries a seqlock-style sequence number, so a concurrent dump
// never reads a torn span (it skips slots whose sequence is odd or
// moves under it) and the whole structure is clean under TSan without
// a single lock on the hot path.
//
// Span names must be string literals or interned strings: the ring
// stores `const char*` and the dump may run long after the recording
// call returned. Dynamic names (algorithm strings) go through
// `intern_name`, which leaks its nodes by design — names are few and
// the pointers must stay valid for the process lifetime.
//
// Rings are fixed-size and overwrite oldest-first; `dropped` counts
// overwritten spans so a dump can say what it lost.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace treesched::obs {

/// Snapshot of one recorded span, in dump order.
struct SpanView {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t arg = 0;  ///< request id, tree size — span-defined
  std::uint32_t tid = 0;  ///< ring index, stable per recording thread
};

class Tracer {
 public:
  /// Spans each ring retains; older spans are overwritten.
  static constexpr std::size_t kRingSpans = 4096;

  void enable() noexcept { enabled_.store(true, std::memory_order_relaxed); }
  void disable() noexcept { enabled_.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// No-op unless enabled. `name` must outlive the tracer (literal or
  /// intern_name result). A thread's first span registers its ring
  /// (takes a lock and allocates); on allocation failure that span is
  /// dropped — record never throws.
  void record(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns,
              std::uint64_t arg = 0) noexcept;

  /// Copies every readable span out of every ring. Spans mid-write and
  /// spans overwritten during the walk are skipped, never torn.
  [[nodiscard]] std::vector<SpanView> snapshot() const;

  /// Total spans recorded / overwritten before being dumped.
  [[nodiscard]] std::uint64_t recorded() const noexcept {
    return recorded_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept;
  /// Per-ring (per recording thread) overwrite counts, in tid order —
  /// what `trace status` reports so a truncated dump names the thread
  /// that lost spans.
  [[nodiscard]] std::vector<std::pair<std::uint32_t, std::uint64_t>>
  dropped_by_ring() const;

  /// Interns a dynamic span name; returned pointer lives forever.
  const char* intern_name(std::string_view name);

  /// Chrome trace_event JSON: {"traceEvents":[...]} with ph:"X"
  /// complete events, ts/dur in microseconds. Returns the number of
  /// spans written (what the `trace dump` reply reports).
  std::size_t write_chrome_trace(std::ostream& os) const;

  /// Process-wide tracer the front-ends and the `trace` verb share.
  static Tracer& global();

 private:
  struct Slot {
    std::atomic<std::uint32_t> seq{0};  ///< odd while a write is in flight
    std::atomic<const char*> name{nullptr};
    std::atomic<std::uint64_t> start_ns{0};
    std::atomic<std::uint64_t> dur_ns{0};
    std::atomic<std::uint64_t> arg{0};
  };
  struct Ring {
    std::uint32_t tid = 0;
    std::atomic<std::uint64_t> next{0};  ///< claims slots mod kRingSpans
    std::vector<Slot> slots{kRingSpans};
  };

  Ring& ring_for_thread();
  static std::uint64_t next_id() noexcept;

  /// Process-unique, never reused — the per-thread ring cache key (see
  /// ring_for_thread for why the Tracer address would be unsound).
  const std::uint64_t id_ = next_id();

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> recorded_{0};

  mutable std::mutex rings_mu_;  ///< guards ring registration + intern set
  std::vector<std::unique_ptr<Ring>> rings_;
  std::vector<std::unique_ptr<std::string>> interned_;
};

/// One span of a cross-process merged dump: like SpanView but with an
/// owned name (backend span names arrive over the wire).
struct MergedSpan {
  std::string name;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t arg = 0;
  std::uint32_t tid = 0;
};

/// One process's contribution to a merged dump.
struct ProcessSpans {
  std::string name;        ///< e.g. "router", "node 127.0.0.1:4001"
  std::uint32_t pid = 1;   ///< distinct per process in the output
  std::vector<MergedSpan> spans;
};

/// Merged Chrome trace_event JSON across processes: every process gets
/// its own pid plus a process_name metadata event, all timestamps are
/// rebased to the globally earliest span (sound on one machine — every
/// process stamps the same steady clock). Returns spans written.
std::size_t write_merged_chrome_trace(std::ostream& os,
                                      const std::vector<ProcessSpans>& procs);

/// Most spans one `trace pull` answer carries. One ring's worth: a
/// pulled snapshot larger than this keeps only the latest spans (by
/// start time) so the reply frame stays well under the 1 MiB default
/// frame bound even with long interned names.
inline constexpr std::size_t kTracePullMaxSpans = 4096;

/// Encodes a span snapshot as the ordered (key, non-negative integer)
/// pairs a stats-shaped `trace` reply carries — the wire format of
/// `trace pull`, the primitive the cluster router's merged dump is
/// built on. Layout: ("spans", N) then, for span i in [0, N),
/// ("n<i>:<name>", tid), ("t<i>", start_ns), ("d<i>", dur_ns),
/// ("a<i>", arg). Every key is unique, so the reply survives the v2
/// text path's duplicate-key rejection too. When the snapshot exceeds
/// `max_spans` only the latest (by start_ns) survive and a trailing
/// ("truncated", omitted) pair says how many were dropped.
void encode_span_pairs(
    std::vector<SpanView> spans, std::size_t max_spans,
    std::vector<std::pair<std::string, std::uint64_t>>& out);

/// Decodes the encode_span_pairs layout back into owned spans (the
/// router side of `trace pull`). Unknown keys are ignored — a newer
/// backend may add counters — but a structurally broken span group
/// (t/d/a without its n, index mismatch) returns false.
bool decode_span_pairs(
    const std::vector<std::pair<std::string, std::uint64_t>>& pairs,
    std::vector<MergedSpan>& out);

/// RAII span: records [construction, destruction) when the tracer is
/// enabled at *construction* time.
class ScopedSpan {
 public:
  ScopedSpan(Tracer& tracer, const char* name, std::uint64_t arg = 0) noexcept;
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_ = nullptr;  ///< null when disabled at construction
  const char* name_;
  std::uint64_t arg_;
  std::uint64_t start_ns_ = 0;
};

}  // namespace treesched::obs

#pragma once
// Per-request stage stamps (src/obs/): one steady-clock nanosecond
// timestamp per lifecycle stage, carried inside the request/response so
// every layer can stamp its own transition without allocation or
// synchronization (a request is owned by exactly one thread at a time).
//
// The stamps partition a request's journey:
//
//   accept -> parse -> admit -> dequeue -> compute_start -> compute_end
//          -> serialize -> flush
//
// net/ owns accept/parse/serialize/flush; service/ owns the middle
// four. Consecutive differences feed the stage-latency histograms, so
// the sum of stage means reconstructs the end-to-end mean exactly
// (integer sums, same clock). A stamp of 0 means "stage not reached" —
// e.g. cache hits served on the I/O thread never dequeue.

#include <array>
#include <cstdint>

#include "obs/metrics.hpp"

namespace treesched::obs {

enum class Stage : std::size_t {
  kAccept = 0,    ///< bytes for this request arrived off the socket
  kParse,         ///< request line/frame decoded
  kAdmit,         ///< accepted into the admission queue
  kDequeue,       ///< popped by a worker
  kComputeStart,  ///< scheduler invoked (cache miss) or cache probed
  kComputeEnd,    ///< scheduler returned / cache answered
  kSerialize,     ///< response bytes appended to the write buffer
  kFlush,         ///< last response byte handed to the kernel
};

inline constexpr std::size_t kStageCount = 8;

inline const char* to_string(Stage s) noexcept {
  switch (s) {
    case Stage::kAccept: return "accept";
    case Stage::kParse: return "parse";
    case Stage::kAdmit: return "admit";
    case Stage::kDequeue: return "dequeue";
    case Stage::kComputeStart: return "compute_start";
    case Stage::kComputeEnd: return "compute_end";
    case Stage::kSerialize: return "serialize";
    case Stage::kFlush: return "flush";
  }
  return "?";
}

struct StageStamps {
  std::array<std::uint64_t, kStageCount> ns{};

  void stamp(Stage s) noexcept {
    ns[static_cast<std::size_t>(s)] = now_ns();
  }
  void stamp(Stage s, std::uint64_t at) noexcept {
    ns[static_cast<std::size_t>(s)] = at;
  }
  [[nodiscard]] std::uint64_t at(Stage s) const noexcept {
    return ns[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] bool has(Stage s) const noexcept { return at(s) != 0; }

  /// Nanoseconds from `from` to `to`; 0 when either stamp is missing or
  /// the clock ordering is violated (never negative).
  [[nodiscard]] std::uint64_t between(Stage from, Stage to) const noexcept {
    const std::uint64_t a = at(from);
    const std::uint64_t b = at(to);
    return (a == 0 || b == 0 || b < a) ? 0 : b - a;
  }
};

}  // namespace treesched::obs

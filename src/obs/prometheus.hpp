#pragma once
// Prometheus text exposition (src/obs/): renders a RegistrySnapshot as
// version 0.0.4 text format — the payload the --metrics-port endpoint
// serves and scripts/check_prometheus.py validates.

#include <string>

#include "obs/metrics.hpp"

namespace treesched::obs {

/// HELP/TYPE once per metric name, then one sample line per
/// (labels) series; histograms expand to cumulative _bucket{le=...}
/// series plus _sum and _count, with bounds scaled to the exposition
/// unit (seconds for latency).
std::string render_prometheus(const RegistrySnapshot& snap);

}  // namespace treesched::obs

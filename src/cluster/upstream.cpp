#include "cluster/upstream.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "cluster/router.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace treesched::cluster {

namespace {

std::uint64_t ms_to_ns(double ms) {
  return ms <= 0.0 ? 0 : static_cast<std::uint64_t>(ms * 1e6);
}

}  // namespace

Upstream::Upstream(Router& router, std::size_t index, std::string host,
                   std::uint16_t port)
    : router_(router),
      index_(index),
      host_(std::move(host)),
      port_(port),
      name_(host_ + ":" + std::to_string(port_)),
      reader_(router.config().max_frame) {}

Upstream::~Upstream() { close_fd(); }

bool Upstream::routable() const {
  return state_ != State::kDown &&
         queue_.size() < router_.config().upstream_queue;
}

void Upstream::close_fd() {
  if (fd_ < 0) return;
  router_.loop().remove(fd_);
  ::close(fd_);
  fd_ = -1;
  interest_ = 0;
}

void Upstream::try_connect(std::uint64_t now_ns) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    next_connect_ns_ = now_ns + ms_to_ns(router_.config().reconnect_backoff_ms);
    return;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    next_connect_ns_ = now_ns + ms_to_ns(router_.config().reconnect_backoff_ms);
    return;
  }
  const int one = 1;
  (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const int rc =
      ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd_);
    fd_ = -1;
    next_connect_ns_ = now_ns + ms_to_ns(router_.config().reconnect_backoff_ms);
    return;
  }
  connect_started_ns_ = now_ns;
  // EPOLLOUT signals connect completion; EPOLLIN covers an immediate
  // same-stack success that already has bytes (loopback can).
  interest_ = EPOLLIN | EPOLLOUT;
  router_.loop().add(fd_, interest_,
                     [this](std::uint32_t events) { handle_events(events); });
  if (rc == 0) {
    on_connected();
  } else {
    state_ = State::kConnecting;
  }
}

void Upstream::on_connected() {
  state_ = State::kUp;
  ++router_.counters().connects;
  last_heard_ns_ = obs::now_ns();
  ping_sent_ns_ = 0;
  ticks_since_stats_ = 0;
  wbuf_.clear();
  wbuf_head_ = 0;
  reader_ = net::FrameReader(router_.config().max_frame);
  // Greet with the v3 magic, then an immediate ping: the first pong is
  // the proof this node is really serving (a connect can succeed
  // against a listener whose process is already wedged).
  wbuf_.append(net::kFrameMagic);
  {
    Forward ping;
    ping.kind = Forward::Kind::kPing;
    send_forward(std::move(ping));
  }
  obs::EventLog::global().emit(
      "node_up", 0, {obs::EventLog::Field::str("node", name_.c_str())});
  if (obs::Tracer::global().enabled()) {
    // A node (re)joining mid-trace missed the `trace start` broadcast;
    // re-arm its ring so the next merged dump includes it.
    Forward ctl;
    ctl.kind = Forward::Kind::kTraceCtl;
    ctl.line = "trace start";
    send_forward(std::move(ctl));
  }
  flush_queue();
  send_buffered();
  if (state_ != State::kUp) return;
  update_interest();
}

void Upstream::handle_events(std::uint32_t events) {
  if (state_ == State::kConnecting) {
    if ((events & (EPOLLOUT | EPOLLERR | EPOLLHUP)) == 0) return;
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      err = errno;
    }
    if (err != 0 || (events & (EPOLLERR | EPOLLHUP)) != 0) {
      fail(std::string("connect failed: ") +
               std::strerror(err != 0 ? err : ECONNREFUSED),
           kFailConnect);
      return;
    }
    on_connected();
    return;
  }
  if (state_ != State::kUp) return;
  if (events & EPOLLERR) {
    fail("socket error", kFailSocket);
    return;
  }
  if (events & EPOLLOUT) {
    send_buffered();
    if (state_ != State::kUp) return;
    flush_queue();
    send_buffered();
    if (state_ != State::kUp) return;
  }
  if (events & EPOLLIN) {
    on_readable();
    if (state_ != State::kUp) return;
  } else if (events & EPOLLHUP) {
    fail("backend hung up", kFailEof);
    return;
  }
  update_interest();
}

void Upstream::on_readable() {
  while (state_ == State::kUp) {
    char* dst = reader_.write_ptr();
    const std::size_t capacity = reader_.write_capacity();
    const ssize_t n = ::read(fd_, dst, capacity);
    if (n > 0) {
      reader_.commit(static_cast<std::size_t>(n));
      drain_frames();
      // A short read means the socket buffer is drained: skip the
      // would-be-EAGAIN read (epoll is level-triggered; anything that
      // races in re-signals).
      if (static_cast<std::size_t>(n) < capacity) break;
      continue;
    }
    if (n == 0) {
      fail("backend closed the connection", kFailEof);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    fail(std::string("read failed: ") + std::strerror(errno), kFailSocket);
    return;
  }
  if (state_ != State::kUp) return;
  // Answers freed window slots; move queued forwards into them.
  flush_queue();
  send_buffered();
}

void Upstream::drain_frames() {
  net::Frame frame;
  while (state_ == State::kUp) {
    const net::FrameReader::Status status = reader_.next(frame);
    if (status == net::FrameReader::Status::kNeedMore) return;
    if (status == net::FrameReader::Status::kBad) {
      fail("backend protocol violation: " + reader_.bad_reason(),
           kFailProtocol);
      return;
    }
    ResponseLine resp;
    std::string error;
    if (!net::decode_response_frame(frame, resp, error)) {
      fail("undecodable backend frame: " + error, kFailProtocol);
      return;
    }
    handle_response(std::move(resp));
  }
}

void Upstream::handle_response(ResponseLine&& resp) {
  last_heard_ns_ = obs::now_ns();
  if (!resp.id.has_value()) {
    // The router tags every forward, so an untagged answer matches
    // nothing. Count it and move on — it is a backend bug, not ours.
    ++router_.counters().orphan_responses;
    return;
  }
  const auto it = inflight_.find(*resp.id);
  if (it == inflight_.end()) {
    ++router_.counters().orphan_responses;
    return;
  }
  Forward fwd = std::move(it->second);
  inflight_.erase(it);
  switch (fwd.kind) {
    case Forward::Kind::kPing:
      ping_sent_ns_ = 0;
      break;
    case Forward::Kind::kStatsPoll:
      last_stats_ = std::move(resp.stats);
      break;
    case Forward::Kind::kSchedule:
      router_.on_upstream_response(fwd, std::move(resp));
      break;
    case Forward::Kind::kTracePull:
      router_.on_trace_pull(index_, std::move(resp.stats));
      break;
    case Forward::Kind::kTraceCtl:
      break;  // fire-and-forget broadcast; the ack carries nothing
  }
}

void Upstream::enqueue(Forward fwd) {
  queue_.push_back(std::move(fwd));
  // Serialize into the write buffer now — load/queue accounting must be
  // synchronous for route()'s bounded-load walk and for cancel_queued —
  // but leave the syscall to the shared deferred flush.
  flush_queue();
  schedule_send();
}

void Upstream::schedule_send() {
  if (send_scheduled_) return;
  send_scheduled_ = true;
  // `this` outlives every deferred call: upstreams are destroyed with
  // the Router, after run() returned and with it every deferred fn.
  router_.loop().defer([this] {
    send_scheduled_ = false;
    if (state_ != State::kUp) return;  // died or reconnecting since
    send_buffered();
    if (state_ != State::kUp) return;
    flush_queue();
    send_buffered();
    if (state_ != State::kUp) return;
    update_interest();
  });
}

bool Upstream::cancel_queued(std::uint64_t conn_id, std::uint64_t key) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->kind == Forward::Kind::kSchedule && it->conn_id == conn_id &&
        it->key == key) {
      queue_.erase(it);
      return true;
    }
  }
  return false;
}

void Upstream::send_forward(Forward&& fwd) {
  const std::uint64_t uid = router_.next_uid();
  fwd.sent_ns = obs::now_ns();
  net::FrameWriter writer(wbuf_);
  switch (fwd.kind) {
    case Forward::Kind::kPing:
      ping_sent_ns_ = fwd.sent_ns;
      writer.ping(uid);
      break;
    case Forward::Kind::kStatsPoll:
      writer.stats(uid);
      break;
    case Forward::Kind::kSchedule:
      // Traced requests carry their id to the backend in the frame's
      // trace-context extension (origin 1 = the router); untraced ones
      // stay byte-identical to the pre-trace wire format.
      if (fwd.trace_id != 0) {
        writer.request(fwd.line + " id=" + std::to_string(uid),
                       net::TraceContext{fwd.trace_id, 1});
      } else {
        writer.request(fwd.line + " id=" + std::to_string(uid));
      }
      break;
    case Forward::Kind::kTracePull:
    case Forward::Kind::kTraceCtl:
      writer.request(fwd.line + " id=" + std::to_string(uid));
      break;
  }
  inflight_.emplace(uid, std::move(fwd));
}

void Upstream::flush_queue() {
  const RouterConfig& cfg = router_.config();
  while (state_ == State::kUp && !queue_.empty() &&
         inflight_.size() < cfg.upstream_window &&
         wbuf_.size() - wbuf_head_ <= cfg.upstream_max_wbuf) {
    Forward fwd = std::move(queue_.front());
    queue_.pop_front();
    send_forward(std::move(fwd));
  }
}

void Upstream::send_buffered() {
  while (state_ == State::kUp && wbuf_head_ < wbuf_.size()) {
    const ssize_t n =
        ::send(fd_, wbuf_.data() + wbuf_head_, wbuf_.size() - wbuf_head_,
               MSG_NOSIGNAL);
    if (n > 0) {
      wbuf_head_ += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    fail(std::string("write failed: ") + std::strerror(errno), kFailSocket);
    return;
  }
  if (wbuf_head_ == wbuf_.size()) {
    wbuf_.clear();
    wbuf_head_ = 0;
  } else if (wbuf_head_ > 65536 && wbuf_head_ * 2 > wbuf_.size()) {
    wbuf_.erase(0, wbuf_head_);
    wbuf_head_ = 0;
  }
}

void Upstream::update_interest() {
  if (fd_ < 0 || state_ != State::kUp) return;
  std::uint32_t want = EPOLLIN;
  if (wbuf_head_ < wbuf_.size()) want |= EPOLLOUT;
  if (want != interest_) {
    router_.loop().modify(fd_, want);
    interest_ = want;
  }
}

void Upstream::health_tick(std::uint64_t now_ns) {
  const RouterConfig& cfg = router_.config();
  switch (state_) {
    case State::kDown:
      if (now_ns >= next_connect_ns_) try_connect(now_ns);
      return;
    case State::kConnecting:
      if (now_ns - connect_started_ns_ > ms_to_ns(cfg.ping_timeout_ms)) {
        fail("connect timed out", kFailConnectTimeout);
      }
      return;
    case State::kUp:
      break;
  }
  if (ping_sent_ns_ != 0 &&
      now_ns - ping_sent_ns_ > ms_to_ns(cfg.ping_timeout_ms)) {
    // TCP never loses a pong; an overdue one means the node stopped
    // serving (wedged process, dead machine behind a live socket).
    fail("ping timed out", kFailPingTimeout);
    return;
  }
  if (ping_sent_ns_ == 0) {
    Forward ping;
    ping.kind = Forward::Kind::kPing;
    send_forward(std::move(ping));
  }
  if (cfg.stats_poll_ticks != 0 &&
      ++ticks_since_stats_ >= cfg.stats_poll_ticks) {
    ticks_since_stats_ = 0;
    Forward poll;
    poll.kind = Forward::Kind::kStatsPoll;
    send_forward(std::move(poll));
  }
  flush_queue();
  send_buffered();
  if (state_ != State::kUp) return;
  update_interest();
}

void Upstream::fail(const std::string& reason, int code) {
  if (state_ == State::kDown && fd_ < 0) return;
  close_fd();
  state_ = State::kDown;
  next_connect_ns_ =
      obs::now_ns() + ms_to_ns(router_.config().reconnect_backoff_ms);
  ping_sent_ns_ = 0;
  wbuf_.clear();
  wbuf_head_ = 0;
  last_stats_.clear();
  ++router_.counters().node_failures;
  ++disconnects_;
  last_error_code_ = static_cast<std::uint64_t>(code);
  std::fprintf(stderr, "[router] node %s down: %s\n", name_.c_str(),
               reason.c_str());
  obs::EventLog::global().emit(
      "node_down", 0,
      {obs::EventLog::Field::str("node", name_.c_str()),
       obs::EventLog::Field::str("reason", reason.c_str()),
       obs::EventLog::Field::u64("code", static_cast<std::uint64_t>(code))});
  // Hand every unanswered forward back AFTER this node reads as down,
  // so a retry's ring walk can never re-pick it. Probes die with the
  // socket; schedule forwards retry or settle the typed error; a dying
  // trace pull must tell the router so a merged dump in flight can
  // finish without this node instead of hanging.
  auto inflight = std::move(inflight_);
  inflight_.clear();
  auto queued = std::move(queue_);
  queue_.clear();
  const auto hand_back = [this](Forward&& fwd) {
    if (fwd.kind == Forward::Kind::kSchedule) {
      if (fwd.retries_left > 0) ++retries_;
      router_.on_upstream_failed(std::move(fwd));
    } else if (fwd.kind == Forward::Kind::kTracePull) {
      router_.on_trace_pull_failed(index_);
    }
  };
  for (auto& [uid, fwd] : inflight) hand_back(std::move(fwd));
  for (auto& fwd : queued) hand_back(std::move(fwd));
}

}  // namespace treesched::cluster

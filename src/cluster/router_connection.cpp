#include "cluster/router_connection.hpp"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <utility>
#include <vector>

#include "cluster/router.hpp"
#include "obs/event_log.hpp"
#include "obs/trace.hpp"
#include "service/errors.hpp"
#include "util/confine.hpp"

namespace treesched::cluster {

RouterConnection::RouterConnection(Router& router, int fd, std::uint64_t id)
    : router_(router),
      fd_(fd),
      id_(id),
      framer_(router.config().max_line),
      reader_(router.config().max_frame) {
  interest_ = EPOLLIN;
  router_.loop().add(fd_, interest_,
                     [this](std::uint32_t events) { handle_events(events); });
}

RouterConnection::~RouterConnection() {
  // A vanished client's forwards that are still queued router-side are
  // pulled back (freeing the queue slots); ones already on the wire run
  // to completion on their node and the answers are dropped at
  // delivery — same shape as the server cancelling a dead client's
  // queued tickets while running ones finish.
  for (Pending& p : pending_) {
    if (!p.result.has_value() && p.routed && p.node != SIZE_MAX) {
      (void)router_.try_cancel(p.node, id_, p.key);
    }
  }
  router_.loop().remove(fd_);
  ::close(fd_);
}

void RouterConnection::handle_events(std::uint32_t events) {
  if (events & EPOLLERR) {
    abort_connection();
    return;
  }
  if (events & EPOLLOUT) {
    send_buffered();
    if (closing_) return;
  }
  if (events & EPOLLIN) {
    on_readable();
    if (closing_) return;
  } else if (events & EPOLLHUP) {
    abort_connection();
    return;
  }
  update_interest();
  finish_if_drained();
}

void RouterConnection::on_readable() {
  while (!read_closed_ && !closing_) {
    if (mode_ == Mode::kBinary) {
      char* dst = reader_.write_ptr();
      const std::size_t capacity = reader_.write_capacity();
      const ssize_t n = ::read(fd_, dst, capacity);
      if (n > 0) {
        reader_.commit(static_cast<std::size_t>(n));
        drain_frames();
        if (closing_) return;
        if (wbuf_.size() - wbuf_head_ > router_.config().max_wbuf) break;
        // Short read = socket drained; skip the would-be-EAGAIN pass
        // (level-triggered epoll re-signals anything that raced in).
        if (static_cast<std::size_t>(n) < capacity) break;
        continue;
      }
      if (n == 0) {
        read_closed_ = true;
        if (reader_.buffered() > 0) {
          ++router_.counters().frames_bad;
          emit_error(std::nullopt, ErrorCode::kBadRequest,
                     "connection half-closed mid-frame (" +
                         std::to_string(reader_.buffered()) +
                         " unframed bytes)");
        }
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      abort_connection();
      return;
    }

    std::array<char, 16384> buf;
    const ssize_t n = ::read(fd_, buf.data(), buf.size());
    if (n > 0) {
      handle_bytes(buf.data(), static_cast<std::size_t>(n));
      if (closing_) return;
      if (wbuf_.size() - wbuf_head_ > router_.config().max_wbuf) break;
      if (static_cast<std::size_t>(n) < buf.size()) break;
      continue;
    }
    if (n == 0) {
      read_closed_ = true;
      if (mode_ == Mode::kDetect && !prelude_.empty()) {
        mode_ = Mode::kBinary;
        ++router_.counters().frames_bad;
        emit_error(std::nullopt, ErrorCode::kBadRequest,
                   "connection closed inside the protocol magic");
      } else if (mode_ != Mode::kBinary) {
        if (const auto last = framer_.finish()) handle_line(*last);
      }
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    abort_connection();
    return;
  }
  flush_ready();
  send_buffered();
}

void RouterConnection::handle_bytes(const char* data, std::size_t len) {
  if (mode_ == Mode::kText) {
    feed_text(data, len);
    return;
  }
  prelude_.append(data, len);
  if (prelude_.front() != net::kFrameMagic.front()) {
    mode_ = Mode::kText;
    const std::string prelude = std::move(prelude_);
    prelude_ = {};
    feed_text(prelude.data(), prelude.size());
    return;
  }
  if (prelude_.size() < net::kFrameMagic.size()) return;
  if (std::string_view(prelude_).substr(0, net::kFrameMagic.size()) !=
      net::kFrameMagic) {
    mode_ = Mode::kBinary;
    ++router_.counters().frames_bad;
    protocol_violation("bad protocol magic");
    return;
  }
  mode_ = Mode::kBinary;
  ++router_.counters().v3_conns;
  if (prelude_.size() > net::kFrameMagic.size()) {
    reader_.feed(prelude_.data() + net::kFrameMagic.size(),
                 prelude_.size() - net::kFrameMagic.size());
  }
  prelude_ = {};
  drain_frames();
}

void RouterConnection::feed_text(const char* data, std::size_t len) {
  for (const net::LineFramer::Line& line : framer_.feed(data, len)) {
    handle_line(line);
    if (closing_ || read_closed_) return;
  }
}

void RouterConnection::handle_line(const net::LineFramer::Line& line) {
  ++router_.counters().lines;
  if (line.overflow) {
    push_settled_error(std::nullopt, ErrorCode::kBadRequest,
                       "request line of " + std::to_string(line.wire_bytes) +
                           " bytes exceeds the " +
                           std::to_string(framer_.max_line()) +
                           "-byte limit");
    return;
  }
  std::string text = line.text;
  const auto hash_pos = text.find('#');
  if (hash_pos != std::string::npos) text.resize(hash_pos);
  if (text.find_first_not_of(" \t\r") == std::string::npos) return;

  RequestLine parsed;
  try {
    parsed = parse_request_line(text);
  } catch (const std::exception& e) {
    ++router_.counters().parse_errors;
    push_settled_error(std::nullopt, ErrorCode::kBadRequest, e.what());
    return;
  }
  dispatch_request(as_view(parsed), net::TraceContext{});
  flush_ready();
}

void RouterConnection::drain_frames() {
  net::Frame frame;
  while (!closing_ && !read_closed_) {
    const net::FrameReader::Status status = reader_.next(frame);
    if (status == net::FrameReader::Status::kNeedMore) return;
    if (status == net::FrameReader::Status::kBad) {
      ++router_.counters().frames_bad;
      protocol_violation(reader_.bad_reason());
      return;
    }
    ++router_.counters().frames_in;
    handle_frame(frame);
  }
}

void RouterConnection::handle_frame(const net::Frame& frame) {
  switch (frame.opcode) {
    case net::Opcode::kRequest: {
      net::TraceContext ctx;
      std::string_view rest;
      std::string error;
      if (!net::split_trace_context(frame, ctx, rest, error)) {
        ++router_.counters().frames_bad;
        protocol_violation(std::move(error));
        return;
      }
      handle_request_payload(rest, ctx);
      return;
    }
    case net::Opcode::kBatch: {
      // The trace extension leads the batch payload (before the entry
      // count); every entry of the batch shares the frame's context.
      net::TraceContext ctx;
      std::string_view rest;
      std::string error;
      if (!net::split_trace_context(frame, ctx, rest, error)) {
        ++router_.counters().frames_bad;
        protocol_violation(std::move(error));
        return;
      }
      std::vector<std::string_view> entries;
      if (!net::decode_batch(rest, entries, error)) {
        ++router_.counters().frames_bad;
        protocol_violation(std::move(error));
        return;
      }
      router_.counters().batch_requests += entries.size();
      for (const std::string_view entry : entries) {
        handle_request_payload(entry, ctx);
        if (closing_ || read_closed_) return;
      }
      return;
    }
    case net::Opcode::kCancel: {
      std::uint64_t cancel_id = 0;
      if (!net::decode_cancel(frame, cancel_id)) {
        ++router_.counters().frames_bad;
        protocol_violation("cancel frame payload is not one u64 id");
        return;
      }
      handle_cancel(cancel_id);
      return;
    }
    case net::Opcode::kPing:
    case net::Opcode::kStats: {
      std::optional<std::uint64_t> id;
      if (!net::decode_control_id(frame, id)) {
        ++router_.counters().frames_bad;
        protocol_violation("control frame payload contradicts its flags");
        return;
      }
      if (frame.opcode == net::Opcode::kPing) {
        handle_ping(id);
      } else {
        handle_stats(id);
      }
      return;
    }
    default:
      ++router_.counters().frames_bad;
      protocol_violation("unknown opcode " +
                         std::to_string(static_cast<int>(frame.opcode)));
      return;
  }
}

void RouterConnection::handle_request_payload(std::string_view payload,
                                              const net::TraceContext& ctx) {
  ++router_.counters().lines;
  RequestView req;
  std::string error;
  bool parsed = false;
  {
    obs::ScopedSpan span(obs::Tracer::global(), "net/parse", ctx.trace_id);
    parsed = parse_request_view(payload, req, error);
  }
  if (!parsed) {
    ++router_.counters().parse_errors;
    push_settled_error(std::nullopt, ErrorCode::kBadRequest,
                       std::move(error));
    return;
  }
  dispatch_request(req, ctx);
}

void RouterConnection::dispatch_request(const RequestView& req,
                                        const net::TraceContext& ctx) {
  switch (req.kind) {
    case RequestLine::Kind::kCancel:
      handle_cancel(*req.id);
      break;
    case RequestLine::Kind::kPing:
      handle_ping(req.id);
      break;
    case RequestLine::Kind::kStats:
      handle_stats(req.id);
      break;
    case RequestLine::Kind::kTrace:
      handle_trace(req);
      break;
    case RequestLine::Kind::kSchedule:
      handle_schedule(req, ctx);
      break;
  }
}

void RouterConnection::handle_schedule(const RequestView& req,
                                       const net::TraceContext& ctx) {
  if (req.id && has_pending_tag(*req.id)) {
    push_settled_error(std::nullopt, ErrorCode::kBadRequest,
                       "duplicate id=" + std::to_string(*req.id) +
                           " (a request with this tag is still pending)");
    return;
  }
  if (inflight_ >= router_.config().max_pending) {
    obs::EventLog::global().emit(
        "queue_full", ctx.trace_id,
        {obs::EventLog::Field::u64("conn", id_),
         obs::EventLog::Field::u64("window", router_.config().max_pending)});
    const std::string msg =
        "connection window full (" +
        std::to_string(router_.config().max_pending) +
        " requests in flight); read some answers first";
    if (req.id) {
      emit_error(req.id, ErrorCode::kQueueFull, msg);
    } else {
      push_settled_error(std::nullopt, ErrorCode::kQueueFull, msg);
    }
    return;
  }

  const Result<std::uint64_t, ServiceError> fp =
      router_.fingerprint_spec(req.tree_spec);
  if (!fp.ok()) {
    const ServiceError& err = fp.error();
    if (req.id) {
      emit_error(req.id, err.code, err.message);
    } else {
      push_settled_error(std::nullopt, err.code, err.message);
    }
    return;
  }

  Pending pending;
  pending.key = next_key_++;
  pending.id = req.id;
  pending.priority = static_cast<int>(req.priority);

  // The distributed trace id: a traced client's own id wins (the
  // correlator must be end-to-end); otherwise the router mints one per
  // request while its tracer is on. Zero = untraced, and the forward's
  // frame stays byte-identical to the pre-trace wire format.
  std::uint64_t trace_id = ctx.trace_id;
  if (trace_id == 0 && obs::Tracer::global().enabled()) {
    trace_id = router_.next_trace_id();
  }

  Forward fwd;
  fwd.kind = Forward::Kind::kSchedule;
  fwd.conn_id = id_;
  fwd.key = pending.key;
  fwd.fingerprint = fp.value();
  fwd.retries_left = router_.config().retries;
  fwd.trace_id = trace_id;
  fwd.priority = pending.priority;
  // The canonical forward line: the client's request re-spelled WITHOUT
  // its id= tag — the upstream id is the router's own (appended fresh
  // at each send, so a retry can never collide with the first attempt)
  // and the client's tag is restored at delivery.
  fwd.line.reserve(req.tree_spec.size() + req.algo.size() + 48);
  fwd.line.append(req.tree_spec);
  fwd.line.push_back(' ');
  fwd.line.append(req.algo);
  fwd.line.push_back(' ');
  fwd.line.append(std::to_string(req.p));
  if (req.memory_cap != 0) {
    fwd.line.push_back(' ');
    fwd.line.append(std::to_string(req.memory_cap));
  }
  if (req.priority != Priority::kBatch) {
    fwd.line.append(" priority=");
    fwd.line.append(to_string(req.priority));
  }
  if (req.deadline_ms > 0.0) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), " deadline_ms=%.17g", req.deadline_ms);
    fwd.line.append(buf);
  }

  const Result<std::size_t, ServiceError> routed =
      router_.route(std::move(fwd));
  if (!routed.ok()) {
    const ServiceError& err = routed.error();
    if (err.code == ErrorCode::kQueueFull) {
      ++router_.counters().queue_full;
      obs::EventLog::global().emit(
          "queue_full", trace_id,
          {obs::EventLog::Field::u64("conn", id_),
           obs::EventLog::Field::str("scope", "cluster")});
    } else {
      ++router_.counters().node_unavailable;
    }
    if (req.id) {
      emit_error(req.id, err.code, err.message);
    } else {
      push_settled_error(std::nullopt, err.code, err.message);
    }
    return;
  }
  pending.node = routed.value();
  pending.routed = true;
  ++inflight_;
  pending_.push_back(std::move(pending));
}

void RouterConnection::handle_cancel(std::uint64_t cancel_id) {
  Pending* target = nullptr;
  for (Pending& p : pending_) {
    if (p.id && *p.id == cancel_id) {
      target = &p;
      break;
    }
  }
  if (!target) {
    push_settled_error(std::nullopt, ErrorCode::kBadRequest,
                       "cancel id=" + std::to_string(cancel_id) +
                           ": no pending request with this id");
    return;
  }
  // Cancels stop at the router: a forward still queued here is removed
  // and answered `cancelled`; one already on the backend's wire is NOT
  // chased (a failed remote cancel acks untagged, which cannot be
  // attributed on an upstream connection multiplexing many clients).
  // The answer will arrive and be delivered normally — same observable
  // contract as the server's "already running" case.
  if (!target->result.has_value() && target->routed &&
      target->node != SIZE_MAX &&
      router_.try_cancel(target->node, id_, target->key)) {
    ResponseLine line;
    line.ok = false;
    line.id = target->id;
    line.code = ErrorCode::kCancelled;
    line.message = "cancelled while queued in the router";
    target->result = std::move(line);
    target->routed = false;
    --inflight_;
    return;  // the caller's flush_ready emits it
  }
  push_settled_error(std::nullopt, ErrorCode::kBadRequest,
                     "cancel id=" + std::to_string(cancel_id) +
                         ": request already forwarded or answered");
}

void RouterConnection::handle_ping(std::optional<std::uint64_t> id) {
  // Answered by the router itself: ping probes THIS hop. Whether the
  // backends are up is the stats verb's business (nodes_up).
  ResponseLine line;
  line.kind = ResponseLine::Kind::kPong;
  line.ok = true;
  line.id = id;
  send_response(line);
}

void RouterConnection::handle_stats(std::optional<std::uint64_t> id) {
  ResponseLine line;
  line.kind = ResponseLine::Kind::kStats;
  line.ok = true;
  line.id = id;
  line.stats = router_.stats_pairs();
  send_response(line);
}

void RouterConnection::handle_trace(const RequestView& req) {
  // Cluster-wide trace control: start/stop drive the router's own span
  // recorder AND broadcast to every live backend, `pull` hands this
  // process's ring out in wire form, and `dump` produces one MERGED
  // Chrome timeline across the router and every live node.
  obs::Tracer& tracer = obs::Tracer::global();
  if (req.trace_action == "start") {
    tracer.enable();
    router_.broadcast_trace_ctl("trace start");
  } else if (req.trace_action == "stop") {
    tracer.disable();
    router_.broadcast_trace_ctl("trace stop");
  } else if (req.trace_action == "pull") {
    // The router can itself be a backend of a bigger router.
    ResponseLine line;
    line.kind = ResponseLine::Kind::kTrace;
    line.ok = true;
    line.id = req.id;
    obs::encode_span_pairs(tracer.snapshot(), obs::kTracePullMaxSpans,
                           line.stats);
    send_response(line);
    return;
  } else if (req.trace_action == "dump") {
    const std::string& trace_dir = router_.config().trace_dir;
    if (trace_dir.empty()) {
      emit_error(req.id, ErrorCode::kBadRequest,
                 "trace dump is disabled on this router "
                 "(start it with --trace-dir to allow dumps)");
      return;
    }
    std::string resolved;
    if (!confine_relative_path(trace_dir, req.trace_path, resolved)) {
      emit_error(req.id, ErrorCode::kBadRequest,
                 "trace dump path must be a relative name inside the "
                 "router's trace directory (no absolute paths, no \"..\")");
      return;
    }
    // The merged dump settles asynchronously (it waits on every live
    // node's `trace pull`), so it occupies a window entry like a
    // routed request: push it FIRST, then start the dump — with no
    // live backend the settle happens synchronously inside the call
    // and must already find the entry.
    Pending pending;
    pending.key = next_key_++;
    pending.id = req.id;
    const std::uint64_t key = pending.key;
    pending_.push_back(std::move(pending));
    std::string error;
    if (!router_.start_trace_dump(id_, key, std::move(resolved), error)) {
      pending_.pop_back();
      emit_error(req.id, ErrorCode::kBadRequest, error);
    }
    return;
  }  // "status" mutates nothing
  ResponseLine line;
  line.kind = ResponseLine::Kind::kTrace;
  line.ok = true;
  line.id = req.id;
  line.stats = {
      {"enabled", tracer.enabled() ? 1 : 0},
      {"spans", tracer.recorded()},
      {"dropped", tracer.dropped()},
  };
  if (req.trace_action == "status") {
    // Per-recording-thread overwrite counts plus, per backend node, the
    // `trace pull`s lost to node deaths — what a truncated or partial
    // merged dump traces back to.
    for (const auto& [tid, drops] : tracer.dropped_by_ring()) {
      line.stats.emplace_back("ring" + std::to_string(tid) + "_dropped",
                              drops);
    }
    for (std::size_t i = 0; i < router_.config().nodes.size(); ++i) {
      line.stats.emplace_back(
          "node" + std::to_string(i) + "_pull_failures",
          router_.trace_pull_failures(i));
    }
  }
  send_response(line);
}

void RouterConnection::deliver(std::uint64_t key, ResponseLine&& resp) {
  for (Pending& p : pending_) {
    if (p.key != key) continue;
    if (!p.result.has_value()) {
      // Schedule settles feed the router's windowed SLO gauges; the
      // window entries a dump or a synthesized error ride carry no
      // class and stay out of the ratio.
      if (p.priority >= 0) router_.note_settled(p.priority, resp.ok);
      // The id remap: whatever uid rode the upstream wire is gone; the
      // client sees its own tag (or none, keeping submission order).
      resp.id = p.id;
      p.result = std::move(resp);
      if (p.routed) {
        p.routed = false;
        --inflight_;
      }
    }
    break;
  }
  // Coalesced output: many answers can land in one upstream read batch
  // (pipelined clients, batch frames); order and write them ONCE at the
  // end of the dispatch batch instead of scanning the window and paying
  // a send() syscall per answer.
  schedule_flush();
}

void RouterConnection::schedule_flush() {
  if (flush_scheduled_ || closing_) return;
  flush_scheduled_ = true;
  // The connection may be destroyed before the deferred call runs (an
  // abort posts its removal), so the closure holds the id, not `this`,
  // and re-resolves through the router's live-connection map.
  Router& router = router_;
  const std::uint64_t conn_id = id_;
  router.loop().defer([&router, conn_id] {
    const auto it = router.conns_.find(conn_id);
    if (it != router.conns_.end()) it->second->flush_deferred();
  });
}

void RouterConnection::flush_deferred() {
  flush_scheduled_ = false;
  if (closing_) return;
  flush_ready();
  send_buffered();
  if (closing_) return;
  update_interest();
  finish_if_drained();
}

void RouterConnection::note_routed(std::uint64_t key, std::size_t node) {
  for (Pending& p : pending_) {
    if (p.key == key) {
      p.node = node;
      return;
    }
  }
}

void RouterConnection::flush_ready() {
  while (!pending_.empty() && pending_.front().result.has_value()) {
    send_response(*pending_.front().result);
    pending_.pop_front();
  }
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->id && it->result.has_value()) {
      send_response(*it->result);
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

void RouterConnection::emit_error(std::optional<std::uint64_t> id,
                                  ErrorCode code,
                                  const std::string& message) {
  ResponseLine line;
  line.ok = false;
  line.id = id;
  line.code = code;
  line.message = message;
  send_response(line);
}

void RouterConnection::push_settled_error(std::optional<std::uint64_t> id,
                                          ErrorCode code,
                                          std::string message) {
  Pending pending;
  pending.key = next_key_++;
  pending.id = id;
  ResponseLine line;
  line.ok = false;
  line.id = id;
  line.code = code;
  line.message = std::move(message);
  pending.result = std::move(line);
  pending_.push_back(std::move(pending));
}

void RouterConnection::protocol_violation(std::string message) {
  emit_error(std::nullopt, ErrorCode::kBadRequest, message);
  read_closed_ = true;
}

bool RouterConnection::has_pending_tag(std::uint64_t tag) const {
  for (const Pending& p : pending_) {
    if (p.id && *p.id == tag) return true;
  }
  return false;
}

void RouterConnection::send_response(const ResponseLine& line) {
  if (mode_ == Mode::kBinary) {
    net::FrameWriter writer(wbuf_);
    writer.response(line);
  } else {
    wbuf_ += format_response_line(line);
    wbuf_.push_back('\n');
  }
}

void RouterConnection::send_buffered() {
  while (wbuf_head_ < wbuf_.size()) {
    const ssize_t n =
        ::send(fd_, wbuf_.data() + wbuf_head_, wbuf_.size() - wbuf_head_,
               MSG_NOSIGNAL);
    if (n > 0) {
      wbuf_head_ += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    abort_connection();
    return;
  }
  if (wbuf_head_ == wbuf_.size()) {
    wbuf_.clear();
    wbuf_head_ = 0;
  } else if (wbuf_head_ > 65536 && wbuf_head_ * 2 > wbuf_.size()) {
    wbuf_.erase(0, wbuf_head_);
    wbuf_head_ = 0;
  }
}

void RouterConnection::update_interest() {
  if (closing_) return;
  const std::size_t buffered = wbuf_.size() - wbuf_head_;
  if (buffered > router_.config().max_wbuf) {
    paused_reads_ = true;
  } else if (buffered <= router_.config().max_wbuf / 2) {
    paused_reads_ = false;
  }
  std::uint32_t want = 0;
  if (!read_closed_ && !paused_reads_) want |= EPOLLIN;
  if (wbuf_head_ < wbuf_.size()) want |= EPOLLOUT;
  if (want != interest_) {
    router_.loop().modify(fd_, want);
    interest_ = want;
  }
}

void RouterConnection::begin_drain() {
  read_closed_ = true;
  flush_ready();
  send_buffered();
  update_interest();
  finish_if_drained();
}

void RouterConnection::abort_connection() {
  if (closing_) return;
  closing_ = true;
  router_.defer_close(id_);
}

void RouterConnection::finish_if_drained() {
  if (closing_ || !read_closed_) return;
  if (pending_.empty() && wbuf_head_ == wbuf_.size()) {
    closing_ = true;
    router_.defer_close(id_);
  }
}

}  // namespace treesched::cluster

#include "cluster/router.hpp"

#include <signal.h>
#include <sys/epoll.h>
#include <sys/signalfd.h>
#include <sys/socket.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <fstream>
#include <map>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "campaign/dataset.hpp"
#include "cluster/router_connection.hpp"
#include "obs/event_log.hpp"
#include "service/instance_store.hpp"

namespace treesched::cluster {

namespace {

/// "host:port" -> parts. Throws std::invalid_argument so a typo in
/// --nodes fails the process at startup, never at first request.
std::pair<std::string, std::uint16_t> parse_node(const std::string& spec) {
  const auto pos = spec.rfind(':');
  if (pos == std::string::npos || pos == 0 || pos + 1 == spec.size()) {
    throw std::invalid_argument("backend node \"" + spec +
                                "\" is not host:port");
  }
  const std::string host = spec.substr(0, pos);
  int port = 0;
  try {
    port = std::stoi(spec.substr(pos + 1));
  } catch (const std::exception&) {
    port = -1;
  }
  if (port <= 0 || port > 65535) {
    throw std::invalid_argument("backend node \"" + spec +
                                "\" has an invalid port");
  }
  return {host, static_cast<std::uint16_t>(port)};
}

}  // namespace

Router::Router(RouterConfig config)
    : config_(std::move(config)),
      listener_(net::ListenerConfig{.bind = config_.bind,
                                    .port = config_.port,
                                    .unix_path = {}}),
      ring_(config_.vnodes) {
  if (config_.nodes.empty()) {
    throw std::invalid_argument("router needs at least one backend node");
  }
  if (config_.max_pending == 0 || config_.upstream_window == 0) {
    throw std::invalid_argument(
        "max_pending and upstream_window must be >= 1");
  }
  for (const std::string& spec : config_.nodes) {
    auto [host, port] = parse_node(spec);
    const std::string name = host + ":" + std::to_string(port);
    const std::size_t index = ring_.add(name);
    if (index != upstreams_.size()) {
      throw std::invalid_argument("duplicate backend node " + name);
    }
    upstreams_.push_back(
        std::make_unique<Upstream>(*this, index, std::move(host), port));
    routed_.push_back(0);
    trace_pull_failures_.push_back(0);
  }
  if (!config_.log_json.empty() && !obs::EventLog::global().enabled()) {
    std::string error;
    if (!obs::EventLog::global().open(config_.log_json, error)) {
      throw std::system_error(
          std::make_error_code(std::errc::io_error),
          "cannot open --log-json sink: " + error);
    }
  }
  init_metrics();
  if (config_.metrics_port >= 0) {
    metrics_http_ = std::make_unique<net::MetricsHttp>(
        loop_, registry_,
        net::ListenerConfig{
            .bind = config_.metrics_bind,
            .port = static_cast<std::uint16_t>(config_.metrics_port),
            .unix_path = {}});
  }
}

Router::~Router() {
  *alive_ = false;
  if (signal_fd_ >= 0) ::close(signal_fd_);
  if (health_timer_fd_ >= 0) ::close(health_timer_fd_);
  if (drain_timer_fd_ >= 0) ::close(drain_timer_fd_);
}

void Router::init_metrics() {
  // Same bridge idiom as the server's: plain loop-thread counters read
  // by a collector, sound because every snapshot consumer (the stats
  // verb, the /metrics endpoint) runs on this same loop thread.
  registry_.register_collector(
      [this, alive = std::weak_ptr<bool>(alive_)](obs::RegistrySnapshot& out) {
        if (alive.expired()) return;
        const RouterCounters& rc = counters_;
        auto counter = [&](const char* name, const char* help, double v) {
          out.samples.push_back(obs::MetricSample{
              name, "", help, obs::MetricKind::kCounter, v, ""});
        };
        auto gauge = [&](const char* name, const char* help, double v) {
          out.samples.push_back(obs::MetricSample{
              name, "", help, obs::MetricKind::kGauge, v, ""});
        };
        counter("treesched_router_accepted_total",
                "Client connections accepted",
                static_cast<double>(rc.accepted));
        counter("treesched_router_requests_total",
                "Client requests framed",
                static_cast<double>(rc.lines));
        counter("treesched_router_forwarded_total",
                "Forwards handed to a backend node",
                static_cast<double>(rc.forwarded));
        counter("treesched_router_responses_total",
                "Backend answers delivered to clients",
                static_cast<double>(rc.responses));
        counter("treesched_router_retried_total",
                "Forwards re-routed after a node death",
                static_cast<double>(rc.retried));
        counter("treesched_router_node_unavailable_total",
                "Requests answered with the typed node_unavailable error",
                static_cast<double>(rc.node_unavailable));
        counter("treesched_router_queue_full_total",
                "Requests refused by upstream backpressure",
                static_cast<double>(rc.queue_full));
        counter("treesched_router_node_failures_total",
                "Backend node-death events",
                static_cast<double>(rc.node_failures));
        counter("treesched_router_parse_errors_total",
                "Requests rejected by the grammar",
                static_cast<double>(rc.parse_errors));
        gauge("treesched_router_connections", "Open client connections",
              static_cast<double>(conns_.size()));
        std::size_t up = 0;
        for (const auto& node : upstreams_) {
          if (node->state() == Upstream::State::kUp) ++up;
        }
        gauge("treesched_router_nodes_up", "Backend nodes currently up",
              static_cast<double>(up));
        for (std::size_t i = 0; i < upstreams_.size(); ++i) {
          const std::string node_label =
              "node=\"" + upstreams_[i]->name() + "\"";
          out.samples.push_back(obs::MetricSample{
              "treesched_router_node_routed_total", node_label,
              "Forwards routed to this backend node",
              obs::MetricKind::kCounter, static_cast<double>(routed_[i]),
              ""});
          out.samples.push_back(obs::MetricSample{
              "treesched_router_node_disconnects_total", node_label,
              "Death events of this backend node",
              obs::MetricKind::kCounter,
              static_cast<double>(upstreams_[i]->disconnects()), ""});
          out.samples.push_back(obs::MetricSample{
              "treesched_router_node_retries_total", node_label,
              "Forwards this node's deaths handed back with retry budget",
              obs::MetricKind::kCounter,
              static_cast<double>(upstreams_[i]->retries()), ""});
          out.samples.push_back(obs::MetricSample{
              "treesched_router_node_last_error_code", node_label,
              "Numeric reason of this node's last death (0 = never died)",
              obs::MetricKind::kGauge,
              static_cast<double>(upstreams_[i]->last_error_code()), ""});
        }
      });
  // Windowed SLO error ratio per priority class, same contract as the
  // server tier's: errors over settled requests across the sliding
  // last-minute window (0 when idle).
  registry_.register_collector(
      [this, alive = std::weak_ptr<bool>(alive_)](obs::RegistrySnapshot& out) {
        if (alive.expired()) return;
        for (int c = 0; c <= kPriorityClasses; ++c) {
          const char* label = c == kPriorityClasses
                                  ? "all"
                                  : to_string(static_cast<Priority>(c));
          const std::uint64_t total = slo_responses_[c].windowed();
          const std::uint64_t errors = slo_errors_[c].windowed();
          out.samples.push_back(obs::MetricSample{
              "treesched_router_slo_error_ratio",
              std::string("class=\"") + label + "\"",
              "Errored share of settled requests over the sliding "
              "last-minute window",
              obs::MetricKind::kGauge,
              total == 0 ? 0.0
                         : static_cast<double>(errors) /
                               static_cast<double>(total),
              ""});
        }
      });
  h_upstream_ = &registry_.histogram(
      "treesched_router_upstream_seconds", "",
      "Forward send to backend answer, one routed request",
      obs::Histogram::latency_bounds_ns(), 1e-9, "upstream");
  for (int c = 0; c < kPriorityClasses; ++c) {
    std::string labels = "class=\"";
    labels.append(to_string(static_cast<Priority>(c))).append("\"");
    // The router's rolling per-class p99 gauges ride these histograms'
    // sliding windows (treesched_router_upstream_seconds_window).
    h_upstream_class_[c] = &registry_.histogram(
        "treesched_router_upstream_seconds", labels,
        "Forward send to backend answer, one routed request",
        obs::Histogram::latency_bounds_ns(), 1e-9, "");
  }
}

void Router::note_settled(int cls, bool ok) {
  if (cls < 0 || cls > kPriorityClasses) cls = kPriorityClasses;
  slo_responses_[cls].inc();
  if (!ok) slo_errors_[cls].inc();
  if (cls != kPriorityClasses) {
    slo_responses_[kPriorityClasses].inc();
    if (!ok) slo_errors_[kPriorityClasses].inc();
  }
}

void Router::run() {
  loop_.add(listener_.fd(), EPOLLIN,
            [this](std::uint32_t) { accept_ready(); });
  listener_active_ = true;
  if (metrics_http_) metrics_http_->start();
  if (config_.handle_signals) {
    sigset_t mask;
    sigemptyset(&mask);
    sigaddset(&mask, SIGTERM);
    sigaddset(&mask, SIGINT);
    signal_fd_ = ::signalfd(-1, &mask, SFD_NONBLOCK | SFD_CLOEXEC);
    if (signal_fd_ < 0) {
      throw std::system_error(errno, std::generic_category(), "signalfd");
    }
    loop_.add(signal_fd_, EPOLLIN, [this](std::uint32_t) {
      signalfd_siginfo info;
      while (::read(signal_fd_, &info, sizeof(info)) > 0) {
      }
      begin_drain();
    });
  }
  // Periodic health driver: connects, pings, timeouts, stats polls. It
  // stays armed through the drain — a node that dies mid-drain must
  // still fail over or error out the forwards it holds, or the drain
  // would hang on answers that can never come.
  health_timer_fd_ = ::timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC);
  if (health_timer_fd_ < 0) {
    throw std::system_error(errno, std::generic_category(), "timerfd");
  }
  const auto interval_ns = static_cast<std::uint64_t>(
      std::max(1.0, config_.health_interval_ms) * 1e6);
  itimerspec spec{};
  spec.it_value.tv_sec = static_cast<time_t>(interval_ns / 1'000'000'000ULL);
  spec.it_value.tv_nsec = static_cast<long>(interval_ns % 1'000'000'000ULL);
  spec.it_interval = spec.it_value;
  ::timerfd_settime(health_timer_fd_, 0, &spec, nullptr);
  loop_.add(health_timer_fd_, EPOLLIN, [this](std::uint32_t) {
    std::uint64_t expirations = 0;
    while (::read(health_timer_fd_, &expirations, sizeof(expirations)) > 0) {
    }
    const std::uint64_t now = obs::now_ns();
    for (auto& node : upstreams_) node->health_tick(now);
  });
  {
    // First connects happen now, not a health interval from now.
    const std::uint64_t now = obs::now_ns();
    for (auto& node : upstreams_) node->health_tick(now);
  }
  loop_.run();
  if (metrics_http_) metrics_http_->stop();
  if (signal_fd_ >= 0) {
    loop_.remove(signal_fd_);
    ::close(signal_fd_);
    signal_fd_ = -1;
  }
  if (health_timer_fd_ >= 0) {
    loop_.remove(health_timer_fd_);
    ::close(health_timer_fd_);
    health_timer_fd_ = -1;
  }
  if (drain_timer_fd_ >= 0) {
    loop_.remove(drain_timer_fd_);
    ::close(drain_timer_fd_);
    drain_timer_fd_ = -1;
  }
}

void Router::stop() {
  loop_.post([this] { begin_drain(); });
}

void Router::accept_ready() {
  listener_.accept_ready([this](int fd) {
    if (draining_) {
      ::close(fd);
      return;
    }
    if (conns_.size() >= config_.max_conns) {
      ++counters_.rejected_conns;
      ResponseLine line;
      line.ok = false;
      line.code = ErrorCode::kQueueFull;
      line.message = "router at max connections (" +
                     std::to_string(config_.max_conns) + ")";
      const std::string text = format_response_line(line) + "\n";
      (void)::send(fd, text.data(), text.size(), MSG_NOSIGNAL);
      ::close(fd);
      return;
    }
    ++counters_.accepted;
    const std::uint64_t id = next_conn_id_++;
    conns_.emplace(id, std::make_unique<RouterConnection>(*this, fd, id));
  });
}

Result<std::uint64_t, ServiceError> Router::fingerprint_spec(
    std::string_view spec) {
  const auto it = spec_memo_.find(spec);
  if (it != spec_memo_.end()) return it->second;
  try {
    // Same bounds a node enforces: hostile specs are the router's
    // problem too, and they must fail BEFORE any allocation or read.
    TreeSpecOptions limits;
    limits.max_nodes = config_.max_spec_nodes;
    limits.allow_file = !config_.tree_dir.empty();
    limits.file_dir = config_.tree_dir;
    limits.max_file_bytes = config_.max_spec_bytes;
    // Build the tree just long enough to fingerprint it — the routing
    // key must be bit-identical to what the node's store will compute,
    // and hashing the resolved tree (not the spec text) is what makes
    // `random:500:1` and an equivalent file: spec land on one node.
    const Tree tree = tree_from_spec(std::string(spec), limits);
    const std::uint64_t fp = tree_fingerprint(tree);
    if (spec_memo_.size() >= config_.spec_memo_max) spec_memo_.clear();
    spec_memo_.emplace(std::string(spec), fp);
    return fp;
  } catch (const std::exception& e) {
    return ServiceError{ErrorCode::kBadRequest, e.what(),
                        std::current_exception()};
  }
}

Result<std::size_t, ServiceError> Router::route(Forward fwd) {
  std::size_t total = 0;
  std::size_t live = 0;
  for (const auto& node : upstreams_) {
    total += node->load();
    if (node->state() != Upstream::State::kDown) ++live;
  }
  if (live == 0) {
    return ServiceError{ErrorCode::kNodeUnavailable,
                        "no backend node is up", nullptr};
  }
  // Bounded-load consistent hashing: the first live clockwise node
  // under ceil(c * (total+1) / live) in-flight forwards takes the key.
  // At least one live node sits at or below the average, so the walk
  // only falls through when queues (not the bound) are the constraint.
  const std::size_t bound = static_cast<std::size_t>(std::ceil(
      config_.load_factor * static_cast<double>(total + 1) /
      static_cast<double>(live)));
  std::size_t chosen = SIZE_MAX;
  std::size_t fallback = SIZE_MAX;
  ring_.walk(fwd.fingerprint, [&](std::size_t node) {
    const Upstream& up = *upstreams_[node];
    if (!up.routable()) return false;
    if (fallback == SIZE_MAX) fallback = node;
    if (up.load() < bound) {
      chosen = node;
      return true;
    }
    return false;
  });
  if (chosen == SIZE_MAX) chosen = fallback;
  if (chosen == SIZE_MAX) {
    return ServiceError{
        ErrorCode::kQueueFull,
        "every live backend is at its queue bound (" +
            std::to_string(config_.upstream_queue) +
            " queued forwards); the cluster is saturated",
        nullptr};
  }
  ++counters_.forwarded;
  ++routed_[chosen];
  upstreams_[chosen]->enqueue(std::move(fwd));
  return chosen;
}

bool Router::try_cancel(std::size_t node, std::uint64_t conn_id,
                        std::uint64_t key) {
  if (node >= upstreams_.size()) return false;
  if (!upstreams_[node]->cancel_queued(conn_id, key)) return false;
  ++counters_.cancelled;
  return true;
}

void Router::on_upstream_response(const Forward& fwd, ResponseLine&& resp) {
  ++counters_.responses;
  if (fwd.sent_ns != 0) {
    const std::uint64_t rtt = obs::now_ns() - fwd.sent_ns;
    if (h_upstream_ != nullptr) h_upstream_->record(rtt);
    if (fwd.priority >= 0 && fwd.priority < kPriorityClasses &&
        h_upstream_class_[fwd.priority] != nullptr) {
      h_upstream_class_[fwd.priority]->record(rtt);
    }
    obs::Tracer& tracer = obs::Tracer::global();
    if (tracer.enabled()) {
      // The router-side half of the cross-process trace: this span's
      // arg (the trace id) matches the backend's net/accept span for
      // the same request in a merged dump.
      tracer.record("router/upstream", fwd.sent_ns, rtt, fwd.trace_id);
    }
  }
  const auto it = conns_.find(fwd.conn_id);
  if (it == conns_.end()) return;  // client vanished; drop the answer
  it->second->deliver(fwd.key, std::move(resp));
}

void Router::on_upstream_failed(Forward&& fwd) {
  const std::uint64_t conn_id = fwd.conn_id;
  const std::uint64_t key = fwd.key;
  if (fwd.retries_left > 0) {
    --fwd.retries_left;
    ++counters_.retried;
    obs::EventLog::global().emit(
        "retry", fwd.trace_id,
        {obs::EventLog::Field::u64("conn", fwd.conn_id),
         obs::EventLog::Field::u64("retries_left",
                                   static_cast<std::uint64_t>(
                                       fwd.retries_left))});
    Result<std::size_t, ServiceError> routed = route(std::move(fwd));
    if (routed.ok()) {
      const auto it = conns_.find(conn_id);
      if (it != conns_.end()) it->second->note_routed(key, routed.value());
      return;
    }
    ++counters_.node_unavailable;
    settle_error(conn_id, key, ErrorCode::kNodeUnavailable,
                 "the node serving this request died and no alternate "
                 "could take it: " +
                     routed.error().message);
    return;
  }
  ++counters_.node_unavailable;
  settle_error(conn_id, key, ErrorCode::kNodeUnavailable,
               "the node serving this request died (retry budget "
               "exhausted)");
}

void Router::broadcast_trace_ctl(const std::string& line) {
  for (auto& node : upstreams_) {
    if (node->state() != Upstream::State::kUp) continue;
    Forward ctl;
    ctl.kind = Forward::Kind::kTraceCtl;
    ctl.line = line;
    node->enqueue(std::move(ctl));
  }
}

bool Router::start_trace_dump(std::uint64_t conn_id, std::uint64_t key,
                              std::string path, std::string& error) {
  if (trace_dump_) {
    error = "a merged trace dump is already in progress";
    return false;
  }
  trace_dump_ = std::make_unique<TraceDump>();
  trace_dump_->conn_id = conn_id;
  trace_dump_->key = key;
  trace_dump_->path = std::move(path);
  // The router's own spans merge as pid 1; each backend node gets
  // pid 2 + its dense index, so the Perfetto timeline shows one row
  // group per process with stable names.
  obs::ProcessSpans self;
  self.name = "router";
  self.pid = 1;
  for (const obs::SpanView& sv : obs::Tracer::global().snapshot()) {
    self.spans.push_back(obs::MergedSpan{
        sv.name != nullptr ? sv.name : "", sv.start_ns, sv.dur_ns, sv.arg,
        sv.tid});
  }
  trace_dump_->procs.push_back(std::move(self));
  for (auto& node : upstreams_) {
    if (node->state() != Upstream::State::kUp) continue;
    Forward pull;
    pull.kind = Forward::Kind::kTracePull;
    pull.line = "trace pull";
    ++trace_dump_->awaiting;
    node->enqueue(std::move(pull));
  }
  // No live backend: still a valid dump of the router's own timeline.
  if (trace_dump_->awaiting == 0) finish_trace_dump();
  return true;
}

void Router::on_trace_pull(
    std::size_t node,
    std::vector<std::pair<std::string, std::uint64_t>>&& pairs) {
  if (!trace_dump_ || trace_dump_->awaiting == 0) return;
  std::vector<obs::MergedSpan> spans;
  if (decode_span_pairs(pairs, spans)) {
    obs::ProcessSpans proc;
    proc.name = "node " +
                (node < upstreams_.size() ? upstreams_[node]->name()
                                          : std::to_string(node));
    proc.pid = static_cast<std::uint32_t>(2 + node);
    proc.spans = std::move(spans);
    trace_dump_->procs.push_back(std::move(proc));
    ++trace_dump_->pulled;
  } else {
    // A backend answered garbage: the dump still finishes without it.
    if (node < trace_pull_failures_.size()) ++trace_pull_failures_[node];
    ++trace_dump_->pull_failures;
  }
  if (--trace_dump_->awaiting == 0) finish_trace_dump();
}

void Router::on_trace_pull_failed(std::size_t node) {
  if (node < trace_pull_failures_.size()) ++trace_pull_failures_[node];
  if (!trace_dump_ || trace_dump_->awaiting == 0) return;
  ++trace_dump_->pull_failures;
  if (--trace_dump_->awaiting == 0) finish_trace_dump();
}

void Router::finish_trace_dump() {
  std::unique_ptr<TraceDump> dump = std::move(trace_dump_);
  if (!dump) return;
  ResponseLine line;
  line.kind = ResponseLine::Kind::kTrace;
  std::ofstream os(dump->path, std::ios::binary | std::ios::trunc);
  if (!os) {
    line.ok = false;
    line.code = ErrorCode::kBadRequest;
    line.message = "cannot open trace dump file";
  } else {
    const std::size_t written =
        obs::write_merged_chrome_trace(os, dump->procs);
    os.flush();
    if (!os) {
      line.ok = false;
      line.code = ErrorCode::kBadRequest;
      line.message = "short write on trace dump file";
    } else {
      line.ok = true;
      line.stats = {
          {"enabled", obs::Tracer::global().enabled() ? 1u : 0u},
          {"spans", written},
          {"dropped", obs::Tracer::global().dropped()},
          {"nodes_merged", dump->pulled},
          {"pull_failures", dump->pull_failures},
      };
    }
  }
  const auto it = conns_.find(dump->conn_id);
  if (it == conns_.end()) return;  // client vanished mid-dump
  it->second->deliver(dump->key, std::move(line));
}

void Router::settle_error(std::uint64_t conn_id, std::uint64_t key,
                          ErrorCode code, std::string message) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  ResponseLine line;
  line.ok = false;
  line.code = code;
  line.message = std::move(message);
  it->second->deliver(key, std::move(line));
}

void Router::defer_close(std::uint64_t conn_id) {
  loop_.post([this, conn_id] {
    conns_.erase(conn_id);
    if (draining_) maybe_finish();
  });
}

void Router::begin_drain() {
  if (draining_) return;
  draining_ = true;
  obs::EventLog::global().emit(
      "drain_begin", 0,
      {obs::EventLog::Field::u64("conns", conns_.size())});
  if (listener_active_) {
    loop_.remove(listener_.fd());
    listener_active_ = false;
  }
  if (config_.drain_timeout_ms > 0.0 && drain_timer_fd_ < 0) {
    // Same ceiling as the server's: a client that never reads its last
    // answers must not hold the router process up forever.
    drain_timer_fd_ =
        ::timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC);
    if (drain_timer_fd_ >= 0) {
      const auto ns =
          static_cast<std::uint64_t>(config_.drain_timeout_ms * 1e6);
      itimerspec spec{};
      spec.it_value.tv_sec = static_cast<time_t>(ns / 1'000'000'000ULL);
      spec.it_value.tv_nsec = static_cast<long>(ns % 1'000'000'000ULL);
      if (spec.it_value.tv_sec == 0 && spec.it_value.tv_nsec == 0) {
        spec.it_value.tv_nsec = 1;
      }
      ::timerfd_settime(drain_timer_fd_, 0, &spec, nullptr);
      loop_.add(drain_timer_fd_, EPOLLIN, [this](std::uint32_t) {
        std::uint64_t expirations = 0;
        while (::read(drain_timer_fd_, &expirations, sizeof(expirations)) >
               0) {
        }
        std::vector<std::uint64_t> ids;
        ids.reserve(conns_.size());
        for (const auto& [id, conn] : conns_) ids.push_back(id);
        for (const std::uint64_t id : ids) defer_close(id);
      });
    }
  }
  for (auto& [id, conn] : conns_) conn->begin_drain();
  maybe_finish();
}

void Router::maybe_finish() {
  // Unlike the server there is no outstanding-ticket count: forwards
  // settle synchronously on this thread, and once every client is gone
  // any answer still in flight from a backend has nowhere to go.
  if (conns_.empty()) {
    obs::EventLog::global().emit("drain_complete", 0, {});
    loop_.stop();
  }
}

std::vector<std::pair<std::string, std::uint64_t>> Router::stats_pairs()
    const {
  const RouterCounters& rc = counters_;
  std::size_t up = 0;
  for (const auto& node : upstreams_) {
    if (node->state() == Upstream::State::kUp) ++up;
  }
  std::vector<std::pair<std::string, std::uint64_t>> out = {
      {"conns", conns_.size()},
      {"nodes", upstreams_.size()},
      {"nodes_up", up},
      {"accepted", rc.accepted},
      {"rejected_conns", rc.rejected_conns},
      {"lines", rc.lines},
      {"forwarded", rc.forwarded},
      {"responses", rc.responses},
      {"retried", rc.retried},
      {"node_unavailable", rc.node_unavailable},
      {"queue_full", rc.queue_full},
      {"node_failures", rc.node_failures},
      {"connects", rc.connects},
      {"orphan_responses", rc.orphan_responses},
      {"cancelled", rc.cancelled},
      {"v3_conns", rc.v3_conns},
      {"frames_in", rc.frames_in},
      {"frames_bad", rc.frames_bad},
      {"batch_requests", rc.batch_requests},
      {"parse_errors", rc.parse_errors},
  };
  for (std::size_t i = 0; i < upstreams_.size(); ++i) {
    const std::string prefix = "node" + std::to_string(i) + "_";
    out.emplace_back(prefix + "routed", routed_[i]);
    out.emplace_back(prefix + "up",
                     upstreams_[i]->state() == Upstream::State::kUp ? 1 : 0);
    out.emplace_back(prefix + "inflight", upstreams_[i]->inflight());
    out.emplace_back(prefix + "queued", upstreams_[i]->queued());
    out.emplace_back(prefix + "disconnects", upstreams_[i]->disconnects());
    out.emplace_back(prefix + "retries", upstreams_[i]->retries());
    out.emplace_back(prefix + "last_error_code",
                     upstreams_[i]->last_error_code());
  }
  // Cluster-wide service view: sum the last polled stats snapshot of
  // every node under a backend_ prefix. std::map keeps the key order
  // stable run to run; a node that is down contributes nothing (its
  // snapshot cleared with the socket).
  std::map<std::string, std::uint64_t> agg;
  for (const auto& node : upstreams_) {
    for (const auto& [key, value] : node->last_stats()) agg[key] += value;
  }
  for (const auto& [key, value] : agg) {
    out.emplace_back("backend_" + key, value);
  }
  return out;
}

}  // namespace treesched::cluster

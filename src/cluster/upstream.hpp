#pragma once
// One backend node, as seen from the cluster router (src/cluster/): a
// non-blocking protocol-v3 connection multiplexing every client's
// forwarded requests onto one pipelined socket, plus the node's health
// state machine. All methods run on the router's I/O (event-loop)
// thread — the router is single-threaded end to end; it never computes,
// so one epoll loop carries both sides of every hop.
//
// Forwarding: each routed request becomes a Forward — the canonical
// request line (no id=), the client connection/window entry it answers,
// the fingerprint it was routed by, and its remaining retry budget. At
// send time the forward gets a router-assigned upstream id (one counter
// across all upstreams, so an id can never collide anywhere) appended
// as `id=<uid>`, making every upstream answer attributable no matter
// how far out of order the backend completes it. Responses map uid ->
// Forward -> client window entry; the id is rewritten back to the
// client's own tag (or dropped for untagged requests) on delivery.
//
// Windowing: at most `upstream_window` forwards are in flight per node;
// excess forwards wait in a bounded per-node queue. A full queue is the
// router's backpressure signal — route() fails typed (queue_full) and
// the client hears it immediately instead of the router buffering
// without bound. A slow upstream additionally caps the socket write
// buffer: past upstream_max_wbuf no queued forward is serialized, so a
// node that stops reading stalls its own queue, never the router.
//
// Health: the router's periodic tick pings each node (kPing frames ride
// the same uid space) and fails it when the pong is `ping_timeout_ms`
// overdue, when connect() fails, or when the socket errors — whichever
// comes first. fail() hands every in-flight and queued Forward back to
// the router, which retries each on the next ring alternate (fresh uid,
// deterministic requests make the re-execution safe) or answers the
// typed node_unavailable error when the budget or the cluster is
// exhausted. A failed node reconnects with backoff and re-enters the
// ring eligibility set on the next successful connect.
//
// The tick also polls each node's `stats` (every few intervals); the
// last snapshot feeds the router's aggregated stats verb and keeps
// working while the node is up.

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/frame.hpp"

namespace treesched::cluster {

class Router;

/// One routed request (or router-internal probe) bound for a backend.
struct Forward {
  enum class Kind { kSchedule, kPing, kStatsPoll };
  Kind kind = Kind::kSchedule;
  std::uint64_t conn_id = 0;  ///< client connection (0 = router-internal)
  std::uint64_t key = 0;      ///< client window entry
  std::string line;           ///< canonical request line, no id= field
  std::uint64_t fingerprint = 0;
  int retries_left = 0;
  std::uint64_t sent_ns = 0;  ///< stamped at (each) send, for latency
};

class Upstream {
 public:
  enum class State { kDown, kConnecting, kUp };

  /// Does not connect — the router's first health tick does, so startup
  /// failures ride the same backoff path as mid-run deaths.
  Upstream(Router& router, std::size_t index, std::string host,
           std::uint16_t port);
  ~Upstream();

  Upstream(const Upstream&) = delete;
  Upstream& operator=(const Upstream&) = delete;

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  /// Routing load: in-flight plus queued forwards (the bounded-load
  /// ring compares these across nodes).
  [[nodiscard]] std::size_t load() const {
    return inflight_.size() + queue_.size();
  }
  [[nodiscard]] std::size_t inflight() const { return inflight_.size(); }
  [[nodiscard]] std::size_t queued() const { return queue_.size(); }
  /// Eligible for new routes: not known-dead and queue not full.
  [[nodiscard]] bool routable() const;
  /// Last polled backend `stats` snapshot (empty until the first poll).
  [[nodiscard]] const std::vector<std::pair<std::string, std::uint64_t>>&
  last_stats() const {
    return last_stats_;
  }

  /// Accepts one forward: serializes it immediately when the window and
  /// write buffer allow (so window/queue accounting is synchronous),
  /// queues it otherwise. The actual send() syscall is deferred to the
  /// end of the current event-loop dispatch batch, so N clients routed
  /// here in one batch cost ONE write on the shared upstream socket.
  /// The caller checked routable().
  void enqueue(Forward fwd);

  /// Removes a still-queued (never sent) forward for this client window
  /// entry. True when it was found — the cancel settles client-side; a
  /// forward already on the wire cannot be cancelled remotely.
  bool cancel_queued(std::uint64_t conn_id, std::uint64_t key);

  /// Health driver, called from the router's periodic tick: connects
  /// (with backoff) when down, fails an overdue connect or ping, sends
  /// the next ping / stats poll when up.
  void health_tick(std::uint64_t now_ns);

  /// Marks the node dead: closes the socket, hands every in-flight and
  /// queued Forward back to the router (retry or typed error), arms the
  /// reconnect backoff. Idempotent while down.
  void fail(const std::string& reason);

 private:
  void try_connect(std::uint64_t now_ns);
  void on_connected();
  void handle_events(std::uint32_t events);
  void on_readable();
  void drain_frames();
  void handle_response(ResponseLine&& resp);
  void send_forward(Forward&& fwd);
  /// Moves queued forwards into flight while the window and write
  /// buffer have room.
  void flush_queue();
  void send_buffered();
  /// Arms a once-per-dispatch-batch deferred send_buffered() (see
  /// EventLoop::defer) instead of issuing a syscall per enqueue.
  void schedule_send();
  void update_interest();
  void close_fd();

  Router& router_;
  const std::size_t index_;  ///< dense ring/node index
  const std::string host_;
  const std::uint16_t port_;
  const std::string name_;  ///< "host:port", the ring identity

  State state_ = State::kDown;
  int fd_ = -1;
  std::uint32_t interest_ = 0;
  std::uint64_t connect_started_ns_ = 0;
  std::uint64_t next_connect_ns_ = 0;  ///< backoff gate
  std::uint64_t last_heard_ns_ = 0;    ///< any frame proves liveness
  std::uint64_t ping_sent_ns_ = 0;     ///< 0 = no ping outstanding
  unsigned ticks_since_stats_ = 0;

  std::string wbuf_;
  std::size_t wbuf_head_ = 0;
  bool send_scheduled_ = false;  ///< a deferred send_buffered is armed
  net::FrameReader reader_;

  std::unordered_map<std::uint64_t, Forward> inflight_;  ///< by uid
  std::deque<Forward> queue_;
  std::vector<std::pair<std::string, std::uint64_t>> last_stats_;
};

}  // namespace treesched::cluster

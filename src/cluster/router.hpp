#pragma once
// Cluster router (src/cluster/): a protocol-transparent front-end that
// shards the scheduling service across N backend schedule_server nodes
// by tree fingerprint, so every request for the same tree lands on the
// same node — and its warm result cache — no matter which client sent
// it. Clients speak the unchanged text-v2 / binary-v3 protocols to the
// router exactly as they would to one node; the cluster is invisible
// except for being larger.
//
//   Client ──v2/v3──> RouterConnection ──route()──> Upstream ──v3──> node
//      ^                    |   ^                      │
//      └──── response ──────┘   └──── deliver() <──────┘ (id remapped)
//
// Routing: the router resolves each request's tree spec to the SAME
// 64-bit content fingerprint the backends intern by (it builds the tree
// once, fingerprints it, memoizes spec -> fingerprint, and drops the
// tree — the router stores no trees and runs no scheduler), then walks
// the consistent-hash ring (cluster/ring.hpp) from that fingerprint:
// the first live node under the bounded-load threshold
// ceil(load_factor * (total_in_flight + 1) / live_nodes) takes the
// request. The bound keeps a hot fingerprint from melting its primary
// while still sending nearly every key to its ring-deterministic home.
//
// Like the single-node server, the router is ONE epoll I/O thread and
// never computes: client sockets, backend sockets, the health timer,
// the metrics endpoint, and the signal fd all ride one EventLoop, so
// every structure here is plain loop-thread state — no locks anywhere.
//
// Failure semantics (the part worth reading twice): a node death —
// connect refused, socket error, EOF, or a ping overdue past
// ping_timeout_ms — hands every in-flight and queued forward back to
// the router. Each is retried on the next live ring alternate (the
// requests are deterministic pure functions of the request line, so
// re-execution is safe) up to `retries` times, then answered with the
// typed node_unavailable error. Clients always get an answer: typed
// errors, never a hang, never a dropped response. The dead node
// reconnects with backoff and resumes taking its arc of the ring.
//
// `stats` answers with the router's own counters, per-node routing
// counters, and a backend_-prefixed aggregate summed over each node's
// periodically-polled stats. The same numbers export through the PR-7
// metrics registry on --metrics-port (GET /metrics, Prometheus text).

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/ring.hpp"
#include "cluster/upstream.hpp"
#include "net/event_loop.hpp"
#include "net/frame.hpp"
#include "net/line_framer.hpp"
#include "net/listener.hpp"
#include "net/metrics_http.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/errors.hpp"
#include "service/request.hpp"
#include "util/result.hpp"

namespace treesched::cluster {

class RouterConnection;

struct RouterConfig {
  /// IPv4 address the client-facing listener binds.
  std::string bind = "127.0.0.1";
  /// Client-facing TCP port; 0 = kernel-assigned (see Router::port()).
  std::uint16_t port = 0;
  /// Backend endpoints, "host:port" each. At least one; duplicates are
  /// rejected (one ring identity = one socket).
  std::vector<std::string> nodes;
  /// Virtual points per node on the consistent-hash ring.
  int vnodes = 64;
  /// Bounded-load factor c: a node already carrying more than
  /// ceil(c * (total + 1) / live) in-flight forwards is skipped for the
  /// next ring alternate. Larger = stickier placement, spikier load.
  double load_factor = 1.25;
  /// Client-facing limits, same meaning as the single-node server's.
  std::size_t max_conns = 256;
  std::size_t max_pending = 64;
  std::size_t max_wbuf = 256 * 1024;
  std::size_t max_line = net::LineFramer::kDefaultMaxLine;
  std::size_t max_frame = net::kDefaultMaxFrame;
  /// Install a signalfd for SIGTERM/SIGINT and drain gracefully (the
  /// caller must block both signals first, like schedule_server does).
  bool handle_signals = false;
  /// Prometheus endpoint: -1 = none, 0 = ephemeral, else the port.
  int metrics_port = -1;
  std::string metrics_bind = "127.0.0.1";
  /// Directory `trace dump=<file>` may write (router-side spans); empty
  /// disables dumps — same confinement contract as the server's.
  std::string trace_dir;
  /// Structured JSON-lines event sink: a path (O_APPEND) or "-" for
  /// stdout; empty disables. Process-wide — the first open wins.
  std::string log_json;
  /// Directory `file:` tree specs may be read from WHEN FINGERPRINTING.
  /// The router resolves specs itself to compute the routing key, so it
  /// needs the same tree files the backends have (a shared directory in
  /// practice). Empty refuses file: specs at the router.
  std::string tree_dir;
  /// Spec bounds enforced at fingerprint time, before any allocation or
  /// read — the router is as exposed to hostile specs as a node is.
  std::uint64_t max_spec_nodes = 2'000'000;
  std::uint64_t max_spec_bytes = 16 << 20;
  /// Graceful-drain ceiling in ms; 0 = wait forever. Same contract as
  /// the server: past it, clients that never read are closed.
  double drain_timeout_ms = 0.0;
  /// Per-node forwarding window: at most this many forwards in flight
  /// on one backend socket; excess queues router-side.
  std::size_t upstream_window = 128;
  /// Per-node queue bound; a full queue makes the node ineligible and,
  /// with every alternate also full, answers queue_full (backpressure).
  std::size_t upstream_queue = 1024;
  /// Per-node socket write-buffer bound: past it queued forwards stay
  /// queued (a backend that stops reading stalls its queue, not us).
  std::size_t upstream_max_wbuf = 1 << 20;
  /// Retry-on-alternate budget after a node death. The forwarded
  /// requests are deterministic (same line -> same answer), so
  /// re-execution on another node is safe.
  int retries = 1;
  /// Health cadence: ping each node this often; a node whose pong is
  /// ping_timeout_ms overdue is declared dead. Reconnects back off by
  /// reconnect_backoff_ms.
  double health_interval_ms = 250.0;
  double ping_timeout_ms = 2000.0;
  double reconnect_backoff_ms = 500.0;
  /// Every this many health ticks, poll each node's `stats` for the
  /// aggregated stats verb. 0 disables polling.
  unsigned stats_poll_ticks = 4;
  /// Spec -> fingerprint memo bound (entries). The memo clears wholesale
  /// when full — crude, but the router must never grow without bound on
  /// a stream of distinct specs.
  std::size_t spec_memo_max = 65536;
};

/// Monotonic router counters (loop-thread state, reported by `stats`
/// and bridged into the metrics registry).
struct RouterCounters {
  std::uint64_t accepted = 0;         ///< client connections accepted
  std::uint64_t rejected_conns = 0;   ///< turned away at max_conns
  std::uint64_t lines = 0;            ///< client requests framed
  std::uint64_t v3_conns = 0;         ///< clients that negotiated v3
  std::uint64_t frames_in = 0;        ///< well-formed client v3 frames
  std::uint64_t frames_bad = 0;       ///< protocol-violating client frames
  std::uint64_t batch_requests = 0;   ///< requests arriving in batches
  std::uint64_t parse_errors = 0;     ///< requests the grammar rejected
  std::uint64_t forwarded = 0;        ///< forwards handed to an upstream
  std::uint64_t responses = 0;        ///< backend answers delivered
  std::uint64_t retried = 0;          ///< forwards re-routed after a death
  std::uint64_t node_unavailable = 0; ///< requests answered with the typed
                                      ///< node_unavailable error
  std::uint64_t queue_full = 0;       ///< requests refused by backpressure
  std::uint64_t node_failures = 0;    ///< node-death events
  std::uint64_t connects = 0;         ///< successful backend connects
  std::uint64_t orphan_responses = 0; ///< backend answers with no waiting
                                      ///< forward (late after a retry)
  std::uint64_t cancelled = 0;        ///< forwards cancelled while queued
};

class Router {
 public:
  /// Binds the client listener and resolves the node list (throws
  /// std::invalid_argument / std::system_error) but does not serve yet.
  explicit Router(RouterConfig config);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }
  [[nodiscard]] const std::string& address() const {
    return listener_.address();
  }
  [[nodiscard]] const RouterConfig& config() const { return config_; }
  [[nodiscard]] std::uint16_t metrics_port() const {
    return metrics_http_ ? metrics_http_->port() : 0;
  }
  /// The router's own registry (scraped by --metrics-port).
  [[nodiscard]] obs::MetricsRegistry& registry() { return registry_; }

  /// Serves until stop()/SIGTERM, then drains: the listener closes,
  /// every accepted request is answered (by a backend or a typed
  /// error), buffers flush, and run() returns. Blocks; the calling
  /// thread becomes the I/O thread.
  void run();

  /// Begins a graceful drain from any thread.
  void stop();

 private:
  friend class RouterConnection;
  friend class Upstream;

  struct SpecHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view spec) const {
      return std::hash<std::string_view>{}(spec);
    }
  };

  // --- RouterConnection-facing surface (loop thread only) -------------
  net::EventLoop& loop() { return loop_; }
  RouterCounters& counters() { return counters_; }
  /// Spec -> routing fingerprint: builds the tree once under the same
  /// limits a node enforces, fingerprints it, memoizes, DROPS the tree.
  /// Typed kBadRequest on an unresolvable spec.
  Result<std::uint64_t, ServiceError> fingerprint_spec(
      std::string_view spec);
  /// Routes one forward: bounded-load ring walk over live nodes, then
  /// Upstream::enqueue. Returns the chosen node index, or the typed
  /// error (kNodeUnavailable when no node is up, kQueueFull when every
  /// live alternate is at its queue bound).
  Result<std::size_t, ServiceError> route(Forward fwd);
  /// Cancels a still-queued forward on `node`. False once it is on the
  /// wire (or already answered) — then only the backend could stop it,
  /// and the router deliberately never forwards cancels: a failed
  /// remote cancel acks UNTAGGED, which is unattributable on a
  /// multiplexed upstream connection shared by many clients.
  bool try_cancel(std::size_t node, std::uint64_t conn_id,
                  std::uint64_t key);
  /// Posts the removal of connection `id` (idempotent).
  void defer_close(std::uint64_t conn_id);
  [[nodiscard]] bool draining() const { return draining_; }
  /// The `stats` verb's payload: router counters, per-node routing
  /// counters, then the backend_-prefixed aggregate.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  stats_pairs() const;
  /// Fresh nonzero distributed trace id for one client request. Plain
  /// counter — ids only need to be unique within this router's trace
  /// window, and the origin field already namespaces processes.
  std::uint64_t next_trace_id() { return next_trace_id_++; }
  /// Router-side SLO accounting: one settled client request of priority
  /// class `cls` (kPriorityClasses = unclassified), error or success.
  void note_settled(int cls, bool ok);
  /// Broadcasts a `trace start`/`trace stop` control line to every live
  /// backend (fire-and-forget; nodes that are down catch up on
  /// reconnect when tracing is still enabled).
  void broadcast_trace_ctl(const std::string& line);
  /// Kicks off one merged cluster dump: pulls every live backend's span
  /// ring, merges with the router's own, writes Chrome JSON to `path`
  /// (already confined by the caller), then settles the client window
  /// entry (conn_id, key). False with `error` set when a dump is
  /// already in flight or no span source exists. The caller must have
  /// pushed the window entry BEFORE calling — the reply may be
  /// delivered from a later event-loop turn.
  bool start_trace_dump(std::uint64_t conn_id, std::uint64_t key,
                        std::string path, std::string& error);
  /// Lifetime `trace pull` failures per node (trace status satellite).
  [[nodiscard]] std::uint64_t trace_pull_failures(std::size_t node) const {
    return node < trace_pull_failures_.size() ? trace_pull_failures_[node]
                                              : 0;
  }

  // --- Upstream-facing surface (loop thread only) ---------------------
  /// Upstream wire ids, unique across every backend socket for the
  /// router's lifetime — a retried forward gets a fresh uid, so a slow
  /// answer from the first attempt can never alias the second.
  std::uint64_t next_uid() { return next_uid_++; }
  /// A backend answered forward `fwd`: record latency, deliver to the
  /// client connection (dropped if the client is gone).
  void on_upstream_response(const Forward& fwd, ResponseLine&& resp);
  /// Forward `fwd`'s node died before answering: retry on the next live
  /// ring alternate, or settle the typed node_unavailable error.
  void on_upstream_failed(Forward&& fwd);
  /// Node `node` answered a `trace pull`: decode its spans into the
  /// in-flight merged dump (no-op when none is waiting on it).
  void on_trace_pull(std::size_t node,
                     std::vector<std::pair<std::string, std::uint64_t>>&&
                         pairs);
  /// Node `node` died with a `trace pull` outstanding: count it and let
  /// the in-flight merged dump finish without that node.
  void on_trace_pull_failed(std::size_t node);

  void accept_ready();
  void begin_drain();
  void maybe_finish();
  void init_metrics();
  /// Delivers a router-generated error to a client window entry.
  void settle_error(std::uint64_t conn_id, std::uint64_t key,
                    ErrorCode code, std::string message);
  /// Writes the merged Chrome JSON and settles the dump's client window
  /// entry; called when the last awaited pull answered or failed.
  void finish_trace_dump();

  /// One in-flight merged cluster dump (at most one at a time: the
  /// second `trace dump` gets a typed error instead of interleaving).
  struct TraceDump {
    std::uint64_t conn_id = 0;  ///< client window entry to settle
    std::uint64_t key = 0;
    std::string path;           ///< confined output file
    std::size_t awaiting = 0;   ///< backend pulls not yet answered
    std::size_t pulled = 0;     ///< backend rings merged successfully
    std::size_t pull_failures = 0;  ///< pulls lost to node deaths
    std::vector<obs::ProcessSpans> procs;  ///< router first, then nodes
  };

  RouterConfig config_;
  net::EventLoop loop_;
  net::Listener listener_;
  obs::MetricsRegistry registry_;
  std::unique_ptr<net::MetricsHttp> metrics_http_;
  int signal_fd_ = -1;
  int health_timer_fd_ = -1;
  int drain_timer_fd_ = -1;
  bool listener_active_ = false;

  HashRing ring_;
  std::vector<std::unique_ptr<Upstream>> upstreams_;
  std::vector<std::uint64_t> routed_;  ///< per-node forwards routed

  std::unordered_map<std::uint64_t, std::unique_ptr<RouterConnection>>
      conns_;
  std::unordered_map<std::string, std::uint64_t, SpecHash, std::equal_to<>>
      spec_memo_;
  RouterCounters counters_;
  std::uint64_t next_conn_id_ = 1;
  std::uint64_t next_uid_ = 1;
  std::uint64_t next_trace_id_ = 1;
  bool draining_ = false;

  std::unique_ptr<TraceDump> trace_dump_;
  /// Lifetime per-node `trace pull` failures (trace status reports
  /// these as nodeK_pull_failures).
  std::vector<std::uint64_t> trace_pull_failures_;

  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  obs::Histogram* h_upstream_ = nullptr;  ///< forward send -> answer
  /// Per-class upstream-latency histograms; their sliding windows back
  /// the router's rolling per-class p99 gauges.
  obs::Histogram* h_upstream_class_[kPriorityClasses] = {};
  /// Sliding last-minute settled/errored counts per priority class
  /// ([kPriorityClasses] = all), read by the error-ratio gauges.
  obs::SlidingCounter slo_responses_[kPriorityClasses + 1];
  obs::SlidingCounter slo_errors_[kPriorityClasses + 1];
};

}  // namespace treesched::cluster

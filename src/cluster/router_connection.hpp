#pragma once
// One client connection of the cluster router (src/cluster/): the same
// protocol surface as the single-node server's net::Connection — v2/v3
// negotiation by first bytes, the pending window with in-order untagged
// and out-of-order tagged answers, bounded write buffer with
// backpressure hysteresis, half-close and drain semantics — but where
// the server submits tickets to an in-process service, this forwards to
// a backend node through Router::route() and settles when the node's
// answer comes back through deliver() with the id remapped to the
// client's own tag.
//
// Deliberate divergences from net::Connection, all router-semantics:
//  * schedule requests never touch a scheduler here — resolve the spec
//    to its routing fingerprint, route, wait;
//  * `cancel` only reaches work the router still holds: a forward still
//    queued router-side is removed and answered `cancelled`; one
//    already on the wire acks the same untagged "already running or
//    answered" line the server uses — the router never forwards
//    cancels upstream (see Router::try_cancel for why);
//  * ping / stats / trace answer locally: ping proves THIS hop alive,
//    stats aggregates router + backend counters, trace drives the
//    router process's own span recorder.

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "net/frame.hpp"
#include "net/line_framer.hpp"
#include "service/request_line.hpp"
#include "service/request_view.hpp"

namespace treesched::cluster {

class Router;

class RouterConnection {
 public:
  /// Takes ownership of `fd` (non-blocking, already accepted) and
  /// registers it with the router's event loop.
  RouterConnection(Router& router, int fd, std::uint64_t id);
  ~RouterConnection();

  RouterConnection(const RouterConnection&) = delete;
  RouterConnection& operator=(const RouterConnection&) = delete;

  [[nodiscard]] std::uint64_t id() const { return id_; }

  /// Epoll dispatch: reads on EPOLLIN, flushes on EPOLLOUT, aborts on
  /// EPOLLHUP/EPOLLERR. May defer-close itself.
  void handle_events(std::uint32_t events);

  /// A backend answered window entry `key` (or the router synthesized
  /// an error for it): rewrite the id to the client's tag and emit
  /// every answer that became orderable.
  void deliver(std::uint64_t key, ResponseLine&& resp);

  /// A retry moved window entry `key` to another node (cancel
  /// bookkeeping only — the answer path is deliver() either way).
  void note_routed(std::uint64_t key, std::size_t node);

  /// Router drain: stop reading, settle what remains, flush, close.
  void begin_drain();

 private:
  enum class Mode { kDetect, kText, kBinary };

  /// One request of the pending window. Entries that failed before
  /// routing carry `result` from birth. A merged `trace dump` rides the
  /// window too (never routed; Router::finish_trace_dump settles it),
  /// so untagged answers behind it keep submission order.
  struct Pending {
    std::uint64_t key = 0;
    std::optional<std::uint64_t> id;  ///< the CLIENT's tag
    std::size_t node = SIZE_MAX;      ///< routed node (for cancel)
    bool routed = false;
    int priority = -1;  ///< SLO class of a schedule entry (-1 = none)
    std::optional<ResponseLine> result;
  };

  // --- input path (negotiation and framing mirror net::Connection) ----
  void on_readable();
  void handle_bytes(const char* data, std::size_t len);
  void feed_text(const char* data, std::size_t len);
  void handle_line(const net::LineFramer::Line& line);
  void drain_frames();
  void handle_frame(const net::Frame& frame);
  void handle_request_payload(std::string_view payload,
                              const net::TraceContext& ctx);
  void protocol_violation(std::string message);

  // --- shared dispatch (both protocols) ------------------------------
  void dispatch_request(const RequestView& req,
                        const net::TraceContext& ctx);
  void handle_schedule(const RequestView& req, const net::TraceContext& ctx);
  void handle_cancel(std::uint64_t cancel_id);
  void handle_ping(std::optional<std::uint64_t> id);
  void handle_stats(std::optional<std::uint64_t> id);
  void handle_trace(const RequestView& req);

  // --- output path ----------------------------------------------------
  /// Arms a once-per-dispatch-batch deferred flush_ready+send (see
  /// EventLoop::defer): answers delivered in one batch share one
  /// window scan and one send() syscall.
  void schedule_flush();
  void flush_deferred();
  void flush_ready();
  void emit_error(std::optional<std::uint64_t> id, ErrorCode code,
                  const std::string& message);
  void push_settled_error(std::optional<std::uint64_t> id, ErrorCode code,
                          std::string message);
  [[nodiscard]] bool has_pending_tag(std::uint64_t tag) const;
  void send_response(const ResponseLine& line);
  void send_buffered();
  void update_interest();
  void abort_connection();
  void finish_if_drained();

  Router& router_;
  const int fd_;
  const std::uint64_t id_;
  Mode mode_ = Mode::kDetect;
  std::string prelude_;  ///< undetermined first bytes (at most 4)
  net::LineFramer framer_;
  net::FrameReader reader_;
  std::deque<Pending> pending_;
  std::size_t inflight_ = 0;  ///< routed forwards not yet settled
  std::uint64_t next_key_ = 1;

  std::string wbuf_;
  std::size_t wbuf_head_ = 0;
  std::uint32_t interest_ = 0;
  bool read_closed_ = false;
  bool closing_ = false;
  bool paused_reads_ = false;
  bool flush_scheduled_ = false;  ///< a deferred output flush is armed
};

}  // namespace treesched::cluster

#pragma once
// Consistent-hash ring for the cluster router (src/cluster/): maps a
// request's 64-bit tree fingerprint to one of N backend nodes so that
// identical trees always land on the same node — and its warm result
// cache — while adding or removing a node remaps only ~1/N of the key
// space (the classic Karger ring property; pinned by test_cluster).
//
// Each node is hashed onto the ring at `vnodes` pseudo-random points
// (virtual nodes), which smooths per-node load to a relative spread of
// about 1/sqrt(vnodes). A key routes to the first node point at or
// clockwise-after its own hash point.
//
// The ring is pure placement policy: it knows node NAMES, not sockets,
// health, or load. The router layers those on top through walk() —
// bounded-load routing ("skip a node already past its fair share of
// in-flight work") and failover ("skip a node that is down") are both
// just predicates applied to the clockwise node sequence, so the
// fallback order a key sees is deterministic and shared by every
// decision about it (primary pick, retry-on-alternate, re-pick after a
// node dies).
//
// Determinism is a wire-level contract here: the router and the tests
// (and any future second router in front of the same nodes) must agree
// on placement given the same node list, so the point hash is the
// repo's fixed splitmix64 mixer over the node name — never std::hash,
// whose value is implementation-defined.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace treesched::cluster {

class HashRing {
 public:
  /// `vnodes` virtual points per node; 64 keeps the per-node load
  /// spread near 12% while the whole 8-node ring is still ~512 points.
  explicit HashRing(int vnodes = 64);

  /// Adds `node` (idempotent). Returns its dense index — stable for the
  /// ring's lifetime, which is what the router keys per-node state by.
  std::size_t add(std::string_view node);

  /// Removes `node`'s points from the ring (the index stays allocated,
  /// so other nodes' indices — and their keys' placements — never
  /// shift). Unknown names are ignored.
  void remove(std::string_view node);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const std::string& node_name(std::size_t index) const {
    return nodes_[index];
  }
  [[nodiscard]] bool empty() const { return points_.empty(); }

  /// The primary node for `key`: the first point clockwise. nullopt on
  /// an empty ring.
  [[nodiscard]] std::optional<std::size_t> pick(std::uint64_t key) const;

  /// Visits the DISTINCT nodes clockwise from `key`'s point — the
  /// primary first, then each failover alternate exactly once, in the
  /// deterministic order every placement decision about `key` shares.
  /// Stops early when `visit` returns true; returns whether it did.
  bool walk(std::uint64_t key,
            const std::function<bool(std::size_t node)>& visit) const;

  /// The point a node name contributes for virtual node `replica` —
  /// exposed so tests can pin the placement function itself.
  [[nodiscard]] static std::uint64_t point_hash(std::string_view node,
                                                int replica);

 private:
  struct Point {
    std::uint64_t at;
    std::uint32_t node;
  };

  int vnodes_;
  std::vector<std::string> nodes_;      ///< dense index -> name
  std::vector<bool> present_;           ///< index currently on the ring
  std::vector<Point> points_;           ///< sorted by `at`
};

}  // namespace treesched::cluster

#include "cluster/ring.hpp"

#include <algorithm>

#include "util/hash.hpp"

namespace treesched::cluster {

HashRing::HashRing(int vnodes) : vnodes_(vnodes < 1 ? 1 : vnodes) {}

std::uint64_t HashRing::point_hash(std::string_view node, int replica) {
  // FNV-1a over the name folded through the repo's fixed mixer: the
  // placement must be identical across processes and standard-library
  // implementations (std::hash is neither), because a second router —
  // or the test predicting which backend a spec lands on — has to agree
  // with this one byte-for-byte.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : node) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return mix64(h ^ mix64(static_cast<std::uint64_t>(replica)));
}

std::size_t HashRing::add(std::string_view node) {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i] == node) {
      if (!present_[i]) {
        present_[i] = true;
        for (int r = 0; r < vnodes_; ++r) {
          points_.push_back(
              Point{point_hash(node, r), static_cast<std::uint32_t>(i)});
        }
        std::sort(points_.begin(), points_.end(),
                  [](const Point& a, const Point& b) {
                    return a.at < b.at || (a.at == b.at && a.node < b.node);
                  });
      }
      return i;
    }
  }
  const std::size_t index = nodes_.size();
  nodes_.emplace_back(node);
  present_.push_back(true);
  points_.reserve(points_.size() + static_cast<std::size_t>(vnodes_));
  for (int r = 0; r < vnodes_; ++r) {
    points_.push_back(
        Point{point_hash(node, r), static_cast<std::uint32_t>(index)});
  }
  // Ties broken by node index so two nodes hashing onto the same point
  // (possible, if absurdly unlikely) still order deterministically.
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              return a.at < b.at || (a.at == b.at && a.node < b.node);
            });
  return index;
}

void HashRing::remove(std::string_view node) {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i] == node && present_[i]) {
      present_[i] = false;
      std::erase_if(points_, [i](const Point& p) { return p.node == i; });
      return;
    }
  }
}

std::optional<std::size_t> HashRing::pick(std::uint64_t key) const {
  std::optional<std::size_t> picked;
  walk(key, [&](std::size_t node) {
    picked = node;
    return true;
  });
  return picked;
}

bool HashRing::walk(
    std::uint64_t key,
    const std::function<bool(std::size_t node)>& visit) const {
  if (points_.empty()) return false;
  // First point at or clockwise-after the key's own ring position. The
  // key is a tree fingerprint — already a mixed 64-bit value — but one
  // more mix64 keeps adversarially chosen fingerprints from aiming at a
  // specific arc for free.
  const std::uint64_t at = mix64(key);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), at,
      [](const Point& p, std::uint64_t v) { return p.at < v; });
  // Walk clockwise visiting each distinct node once. Ring order defines
  // the failover sequence, so a fixed-size seen set keeps the walk
  // O(points) worst case without allocation in the common short walk.
  std::vector<bool> seen(nodes_.size(), false);
  std::size_t distinct = 0;
  const std::size_t live =
      static_cast<std::size_t>(
          std::count(present_.begin(), present_.end(), true));
  for (std::size_t step = 0; step < points_.size() && distinct < live;
       ++step, ++it) {
    if (it == points_.end()) it = points_.begin();
    if (seen[it->node]) continue;
    seen[it->node] = true;
    ++distinct;
    if (visit(it->node)) return true;
  }
  return false;
}

}  // namespace treesched::cluster

// The one place Resources sanity lives. Every builtin scheduler calls
// validate_resources() first thing in schedule(), so the error message is
// uniform across the roster (test_service.cpp asserts this for all ten
// registered algorithms) and the service can rely on invalid requests
// failing before they reach the result cache.

#include <stdexcept>
#include <string>

#include "sched/scheduler.hpp"

namespace treesched {

void validate_resources(const Resources& res,
                        const SchedulerCapabilities& caps,
                        const std::string& who) {
  if (res.p < 1) {
    throw std::invalid_argument(who + ": invalid resources: p must be >= 1 (got " +
                                std::to_string(res.p) + ")");
  }
  if (res.memory_cap != 0 && !caps.memory_capped) {
    throw std::invalid_argument(
        who + ": invalid resources: memory cap " +
        std::to_string(res.memory_cap) +
        " given to a scheduler without the memory_capped capability");
  }
}

}  // namespace treesched

#pragma once
// Unified scheduling interface: every algorithm in the repository -- the
// paper's four parallel heuristics (§5), the memory-bounded extensions
// (§7), the sequential baselines (Liu '87, best postorder) and the
// brute-force oracle -- is invoked through the same `Scheduler` contract.
//
// A Scheduler is a stateless strategy object: `schedule()` is const and
// must be safe to call concurrently on distinct trees (the campaign runner
// shares one instance across worker threads). Algorithms advertise their
// constraints through `capabilities()` so callers (campaigns, CLIs,
// benches) can filter rather than hardcode algorithm lists.

#include <memory>
#include <string>

#include "core/schedule.hpp"
#include "core/tree.hpp"

namespace treesched {

/// Execution resources offered to a scheduler.
struct Resources {
  int p = 1;  ///< available processors (>= 1)
  /// Peak-memory cap for memory-capped schedulers; 0 = none requested
  /// (such schedulers derive a default cap from the tree). Passing a
  /// nonzero cap to a scheduler without the memory_capped capability is
  /// rejected by validate_resources() (std::invalid_argument), not
  /// silently ignored.
  MemSize memory_cap = 0;
};

/// Static properties of an algorithm, used for filtering.
struct SchedulerCapabilities {
  /// Ignores Resources::p and emits a single-processor schedule (the
  /// sequential baselines). Still valid on any p >= 1.
  bool sequential_only = false;
  /// Guarantees peak memory <= the (explicit or derived) cap.
  bool memory_capped = false;
  /// 0 = scales to any tree; > 0 = exponential oracle usable only up to
  /// this many nodes (it throws beyond).
  NodeId max_nodes = 0;

  [[nodiscard]] bool is_oracle() const { return max_nodes > 0; }
};

/// Abstract scheduling algorithm. Implementations self-register with the
/// SchedulerRegistry (see sched/registry.hpp).
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Registry key and display name (paper spelling, e.g. "ParSubtrees").
  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] virtual SchedulerCapabilities capabilities() const = 0;

  /// Computes a feasible schedule of `tree` under `res`. Throws
  /// std::invalid_argument when the resources are unusable (p < 1, an
  /// explicit memory cap below the algorithm's feasibility floor, or a
  /// tree beyond an oracle's max_nodes).
  [[nodiscard]] virtual Schedule schedule(const Tree& tree,
                                          const Resources& res) const = 0;
};

using SchedulerPtr = std::unique_ptr<Scheduler>;

/// Shared Resources validation used by every registered scheduler (and by
/// the scheduling service before it consults its cache). Throws
/// std::invalid_argument with a uniform message, prefixed by `who`:
///  * p must be >= 1;
///  * a nonzero memory cap is only meaningful for schedulers with the
///    memory_capped capability — passing one to any other scheduler is a
///    caller error, not a silently ignored field.
/// Cap-vs-feasibility-floor checks stay with the individual schedulers
/// (the floor depends on the tree).
void validate_resources(const Resources& res,
                        const SchedulerCapabilities& caps,
                        const std::string& who);

}  // namespace treesched

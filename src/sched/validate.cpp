#include "sched/validate.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "core/simulator.hpp"

namespace treesched {

ScheduleCheck check_schedule(const Tree& tree, const Schedule& s, int p,
                             MemSize memory_cap) {
  ScheduleCheck check;
  auto fail = [&](const std::string& msg) {
    check.ok = false;
    check.error = msg;
    return check;
  };

  const ValidationResult feasible = validate_schedule(tree, s, p);
  if (!feasible.ok) return fail(feasible.error);

  // Concurrency sweep: +1 at each start, -1 at each finish, processed in
  // time order with finishes before starts at equal times (a task may
  // start the instant another ends on the same processor).
  const NodeId n = tree.size();
  std::vector<std::pair<double, int>> events;
  events.reserve(2 * static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) {
    events.emplace_back(s.start[i], +1);
    events.emplace_back(s.finish(tree, i), -1);
  }
  std::sort(events.begin(), events.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second < b.second;  // -1 (finish) before +1 (start)
  });
  int running = 0;
  for (const auto& [time, delta] : events) {
    running += delta;
    check.max_concurrency = std::max(check.max_concurrency, running);
  }
  if (check.max_concurrency > p) {
    std::ostringstream os;
    os << check.max_concurrency << " tasks running simultaneously on " << p
       << " processors";
    return fail(os.str());
  }

  // The feasibility check above guarantees the simulator replays without
  // throwing; its peak is the exact §3.1 accounting.
  const SimulationResult sim = simulate(tree, s);
  check.makespan = sim.makespan;
  check.peak_memory = sim.peak_memory;
  if (memory_cap != 0 && sim.peak_memory > memory_cap) {
    std::ostringstream os;
    os << "peak memory " << sim.peak_memory << " exceeds the cap "
       << memory_cap;
    return fail(os.str());
  }
  return check;
}

}  // namespace treesched

#include "sched/registry.hpp"

#include <stdexcept>
#include <utility>

namespace treesched {

SchedulerRegistry& SchedulerRegistry::instance() {
  detail::link_builtin_schedulers();
  static SchedulerRegistry registry;
  return registry;
}

void SchedulerRegistry::add(const std::string& name, Factory factory) {
  if (name.empty()) {
    throw std::invalid_argument("SchedulerRegistry: empty name");
  }
  if (!factory) {
    throw std::invalid_argument("SchedulerRegistry: null factory for " + name);
  }
  if (contains(name)) {
    throw std::invalid_argument("SchedulerRegistry: duplicate name " + name);
  }
  entries_.push_back({name, std::move(factory)});
}

bool SchedulerRegistry::contains(const std::string& name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) return true;
  }
  return false;
}

SchedulerPtr SchedulerRegistry::create(const std::string& name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) return e.factory();
  }
  std::string known;
  for (const Entry& e : entries_) {
    if (!known.empty()) known += ", ";
    known += e.name;
  }
  throw std::invalid_argument("SchedulerRegistry: unknown scheduler \"" +
                              name + "\" (known: " + known + ")");
}

std::vector<std::string> SchedulerRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.name);
  return out;
}

std::vector<std::string> SchedulerRegistry::names_where(
    const std::function<bool(const Scheduler&)>& pred) const {
  std::vector<std::string> out;
  for (const Entry& e : entries_) {
    if (pred(*e.factory())) out.push_back(e.name);
  }
  return out;
}

SchedulerRegistrar::SchedulerRegistrar(const std::string& name,
                                       SchedulerRegistry::Factory factory) {
  SchedulerRegistry::instance().add(name, std::move(factory));
}

std::vector<std::string> default_campaign_algorithms() {
  return SchedulerRegistry::instance().names_where([](const Scheduler& s) {
    return !s.capabilities().is_oracle();
  });
}

std::vector<std::string> parallel_campaign_algorithms() {
  return SchedulerRegistry::instance().names_where([](const Scheduler& s) {
    const SchedulerCapabilities caps = s.capabilities();
    return !caps.is_oracle() && !caps.sequential_only;
  });
}

}  // namespace treesched

// The built-in algorithm roster behind the SchedulerRegistry, in the
// paper's presentation order: the four Table 1 heuristics first (§5), then
// the memory-capped schedulers (§7 future work, implemented here), then
// the sequential baselines (§4) and the exponential oracle.
//
// Each adapter is a thin, stateless shim from the Scheduler contract onto
// the algorithm's native entry point; the algorithms themselves stay
// independently callable.

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "core/simulator.hpp"
#include "parallel/capped_subtrees.hpp"
#include "parallel/memory_bounded.hpp"
#include "parallel/par_deepest_first.hpp"
#include "parallel/par_inner_first.hpp"
#include "parallel/par_subtrees.hpp"
#include "sched/registry.hpp"
#include "sequential/bruteforce.hpp"
#include "sequential/liu.hpp"
#include "sequential/postorder.hpp"

namespace treesched {

namespace detail {
void link_builtin_schedulers() {}
}  // namespace detail

namespace {

// ---------------------------------------------------------------------------
// Parallel heuristics (paper §5, Table 1 order).
// ---------------------------------------------------------------------------

class ParSubtreesSched final : public Scheduler {
 public:
  std::string name() const override { return "ParSubtrees"; }
  SchedulerCapabilities capabilities() const override { return {}; }
  Schedule schedule(const Tree& tree, const Resources& res) const override {
    validate_resources(res, capabilities(), name());
    return par_subtrees(tree, res.p);
  }
};

class ParSubtreesOptimSched final : public Scheduler {
 public:
  std::string name() const override { return "ParSubtreesOptim"; }
  SchedulerCapabilities capabilities() const override { return {}; }
  Schedule schedule(const Tree& tree, const Resources& res) const override {
    validate_resources(res, capabilities(), name());
    return par_subtrees_optim(tree, res.p);
  }
};

class ParInnerFirstSched final : public Scheduler {
 public:
  std::string name() const override { return "ParInnerFirst"; }
  SchedulerCapabilities capabilities() const override { return {}; }
  Schedule schedule(const Tree& tree, const Resources& res) const override {
    validate_resources(res, capabilities(), name());
    return par_inner_first(tree, res.p);
  }
};

class ParDeepestFirstSched final : public Scheduler {
 public:
  std::string name() const override { return "ParDeepestFirst"; }
  SchedulerCapabilities capabilities() const override { return {}; }
  Schedule schedule(const Tree& tree, const Resources& res) const override {
    validate_resources(res, capabilities(), name());
    return par_deepest_first(tree, res.p);
  }
};

// ---------------------------------------------------------------------------
// Memory-capped schedulers. With no explicit Resources::memory_cap they
// derive cap = kDefaultCapFactor * (their own feasibility floor), tracing
// the middle of the memory/makespan trade-off curve.
// ---------------------------------------------------------------------------

constexpr double kDefaultCapFactor = 2.0;

/// The derived default cap: kDefaultCapFactor x the best-postorder peak.
MemSize default_cap(const Tree& tree) {
  return static_cast<MemSize>(std::ceil(
      kDefaultCapFactor * static_cast<double>(min_feasible_cap(tree))));
}

class MemoryBoundedSched final : public Scheduler {
 public:
  std::string name() const override { return "MemoryBounded"; }
  SchedulerCapabilities capabilities() const override {
    SchedulerCapabilities caps;
    caps.memory_capped = true;
    return caps;
  }
  Schedule schedule(const Tree& tree, const Resources& res) const override {
    validate_resources(res, capabilities(), name());
    const MemSize cap = res.memory_cap != 0 ? res.memory_cap
                                            : default_cap(tree);
    auto r = memory_bounded_schedule(tree, res.p, cap);
    if (!r) {
      throw std::invalid_argument(name() + ": cap " + std::to_string(cap) +
                                  " below the feasibility floor " +
                                  std::to_string(min_feasible_cap(tree)));
    }
    return std::move(r->schedule);
  }
};

class CappedSubtreesSched final : public Scheduler {
 public:
  std::string name() const override { return "CappedSubtrees"; }
  SchedulerCapabilities capabilities() const override {
    SchedulerCapabilities caps;
    caps.memory_capped = true;
    return caps;
  }
  Schedule schedule(const Tree& tree, const Resources& res) const override {
    validate_resources(res, capabilities(), name());
    // The scheme's own floor can exceed kDefaultCapFactor x the postorder
    // peak, so the derived cap takes the max; the (expensive) floor is
    // only computed when a cap is actually derived or reported.
    const MemSize cap =
        res.memory_cap != 0
            ? res.memory_cap
            : std::max(capped_subtrees_min_cap(tree, res.p),
                       default_cap(tree));
    auto r = capped_subtrees_schedule(tree, res.p, cap);
    if (!r) {
      throw std::invalid_argument(
          name() + ": cap " + std::to_string(cap) +
          " below the feasibility floor " +
          std::to_string(capped_subtrees_min_cap(tree, res.p)));
    }
    return std::move(r->schedule);
  }
};

// ---------------------------------------------------------------------------
// Sequential baselines and the oracle.
// ---------------------------------------------------------------------------

class SequentialSched : public Scheduler {
 public:
  SchedulerCapabilities capabilities() const override {
    SchedulerCapabilities caps;
    caps.sequential_only = true;
    caps.memory_capped = true;  // a sequential run is its own cap
    return caps;
  }
  Schedule schedule(const Tree& tree, const Resources& res) const override {
    validate_resources(res, capabilities(), name());
    std::vector<NodeId> ord = order(tree);
    // The traversal's peak IS this scheduler's derived cap; an explicit
    // cap below it is infeasible (same contract as the other
    // memory-capped schedulers), not silently exceeded.
    if (res.memory_cap != 0) {
      const MemSize peak = sequential_peak_memory(tree, ord);
      if (peak > res.memory_cap) {
        throw std::invalid_argument(
            name() + ": cap " + std::to_string(res.memory_cap) +
            " below the feasibility floor " + std::to_string(peak));
      }
    }
    return sequential_schedule(tree, ord);
  }

 protected:
  [[nodiscard]] virtual std::vector<NodeId> order(const Tree& tree) const = 0;
};

class LiuSched final : public SequentialSched {
 public:
  std::string name() const override { return "Liu"; }

 protected:
  std::vector<NodeId> order(const Tree& tree) const override {
    return liu_optimal_traversal(tree).order;
  }
};

class BestPostorderSched final : public SequentialSched {
 public:
  std::string name() const override { return "BestPostorder"; }

 protected:
  std::vector<NodeId> order(const Tree& tree) const override {
    return postorder(tree, PostorderPolicy::kOptimal).order;
  }
};

class NaturalPostorderSched final : public SequentialSched {
 public:
  std::string name() const override { return "NaturalPostorder"; }

 protected:
  std::vector<NodeId> order(const Tree& tree) const override {
    return postorder(tree, PostorderPolicy::kNatural).order;
  }
};

class BruteForceSeqSched final : public SequentialSched {
 public:
  std::string name() const override { return "BruteForceSeq"; }
  SchedulerCapabilities capabilities() const override {
    SchedulerCapabilities caps = SequentialSched::capabilities();
    caps.max_nodes = 20;
    return caps;
  }

 protected:
  std::vector<NodeId> order(const Tree& tree) const override {
    if (tree.size() > capabilities().max_nodes) {
      throw std::invalid_argument(
          name() + ": tree of size " + std::to_string(tree.size()) +
          " exceeds the oracle limit of " +
          std::to_string(capabilities().max_nodes) + " nodes");
    }
    return bruteforce_optimal_traversal(tree).order;
  }
};

}  // namespace

TREESCHED_REGISTER_SCHEDULER(par_subtrees, "ParSubtrees",
                             new ParSubtreesSched)
TREESCHED_REGISTER_SCHEDULER(par_subtrees_optim, "ParSubtreesOptim",
                             new ParSubtreesOptimSched)
TREESCHED_REGISTER_SCHEDULER(par_inner_first, "ParInnerFirst",
                             new ParInnerFirstSched)
TREESCHED_REGISTER_SCHEDULER(par_deepest_first, "ParDeepestFirst",
                             new ParDeepestFirstSched)
TREESCHED_REGISTER_SCHEDULER(memory_bounded, "MemoryBounded",
                             new MemoryBoundedSched)
TREESCHED_REGISTER_SCHEDULER(capped_subtrees, "CappedSubtrees",
                             new CappedSubtreesSched)
TREESCHED_REGISTER_SCHEDULER(liu, "Liu", new LiuSched)
TREESCHED_REGISTER_SCHEDULER(best_postorder, "BestPostorder",
                             new BestPostorderSched)
TREESCHED_REGISTER_SCHEDULER(natural_postorder, "NaturalPostorder",
                             new NaturalPostorderSched)
TREESCHED_REGISTER_SCHEDULER(bruteforce_seq, "BruteForceSeq",
                             new BruteForceSeqSched)

}  // namespace treesched

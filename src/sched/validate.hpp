#pragma once
// Standalone schedule validation against the paper's invariants — the
// independent referee between the schedulers and everything that trusts
// their output (property tests, the campaign runner, the service's
// validate mode, schedule_tool --validate).
//
// check_schedule() layers three independent checks:
//  1. feasibility (core/schedule.hpp validate_schedule): every task
//     scheduled exactly once with a finite non-negative start, processors
//     within [0, p), children finish before their parent starts, no two
//     tasks overlap on one processor;
//  2. parallelism: at no instant do more than p tasks run simultaneously,
//     established by an event sweep that is independent of the processor
//     assignment (a schedule could respect per-processor disjointness yet
//     claim p+1 concurrent tasks through out-of-range or duplicated
//     processors — 1. rejects that; this check would also catch it on its
//     own);
//  3. memory: the simulator's exact replay (paper §3.1 accounting) stays
//     within `memory_cap` when one is given.
//
// The report carries the replay's makespan and peak so callers get the
// score and the verdict from one pass.

#include <string>

#include "core/schedule.hpp"
#include "core/tree.hpp"

namespace treesched {

/// Outcome of check_schedule. On failure `error` names the first violated
/// invariant; the scores are only meaningful when `ok`.
struct ScheduleCheck {
  bool ok = true;
  std::string error;            ///< empty when ok
  double makespan = 0.0;        ///< simulator makespan (when feasible)
  MemSize peak_memory = 0;      ///< simulator exact peak (when feasible)
  int max_concurrency = 0;      ///< most tasks ever running at once

  explicit operator bool() const { return ok; }
};

/// Validates `s` as a p-processor schedule of `tree`; with a nonzero
/// `memory_cap` additionally requires the exact peak memory to stay within
/// it (pass the cap actually given to a memory-capped scheduler; 0 skips
/// the memory check, matching schedulers that had no cap to honor).
[[nodiscard]] ScheduleCheck check_schedule(const Tree& tree,
                                           const Schedule& s, int p,
                                           MemSize memory_cap = 0);

}  // namespace treesched

#pragma once
// String-keyed registry of scheduling algorithms. Adding a heuristic is a
// single self-registering class (TREESCHED_REGISTER_SCHEDULER) instead of
// the old 6-file `Heuristic` enum surgery; campaigns, benches, CLIs and
// tests enumerate algorithms exclusively through this registry.
//
// Registration order is preserved: the built-ins register in the paper's
// Table 1 order first, so default enumerations match the paper's layout.

#include <functional>
#include <string>
#include <vector>

#include "sched/scheduler.hpp"

namespace treesched {

class SchedulerRegistry {
 public:
  using Factory = std::function<SchedulerPtr()>;

  /// The process-wide registry (built-ins are linked in on first use).
  static SchedulerRegistry& instance();

  /// Registers a factory under `name`. Throws std::invalid_argument on a
  /// duplicate name. Not thread-safe against concurrent lookups; all
  /// registration happens during static initialization.
  void add(const std::string& name, Factory factory);

  [[nodiscard]] bool contains(const std::string& name) const;

  /// Instantiates the scheduler registered under `name`. Throws
  /// std::invalid_argument listing the known names when `name` is unknown.
  [[nodiscard]] SchedulerPtr create(const std::string& name) const;

  /// All registered names, in registration order.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Names whose scheduler satisfies `pred`, in registration order.
  [[nodiscard]] std::vector<std::string> names_where(
      const std::function<bool(const Scheduler&)>& pred) const;

 private:
  SchedulerRegistry() = default;

  struct Entry {
    std::string name;
    Factory factory;
  };
  std::vector<Entry> entries_;
};

/// Registers a scheduler factory at static-initialization time:
///   namespace { const SchedulerRegistrar reg{"Name", [] { ... }}; }
class SchedulerRegistrar {
 public:
  SchedulerRegistrar(const std::string& name,
                     SchedulerRegistry::Factory factory);
};

#define TREESCHED_REGISTER_SCHEDULER(tag, name, ...)              \
  namespace {                                                     \
  const ::treesched::SchedulerRegistrar registrar_##tag{          \
      name, [] { return ::treesched::SchedulerPtr(__VA_ARGS__); }}; \
  }

/// The default campaign roster: every registered algorithm that scales to
/// arbitrary trees (oracles excluded), in registration (= paper) order.
std::vector<std::string> default_campaign_algorithms();

/// The parallel subset of the campaign roster (sequential baselines also
/// excluded) — what makespan-focused benches iterate.
std::vector<std::string> parallel_campaign_algorithms();

namespace detail {
/// Defined in builtin_schedulers.cpp; referencing it forces the linker to
/// keep that translation unit (and its self-registering statics) when
/// treesched is consumed as a static library.
void link_builtin_schedulers();
}  // namespace detail

}  // namespace treesched
